//! The distributed fabric's wire contract: versioned JSONL files exchanged
//! through a spool directory.
//!
//! The supervisor and its workers share no memory and no sockets — only a
//! directory. Every artefact is a flat JSONL file in the journal's
//! hand-rolled dialect (floats as IEEE-754 bit patterns, strings escaped by
//! `crate::repro::esc`), so the same parsing discipline — and the same
//! torn-tail tolerance — applies end to end:
//!
//! ```text
//! spool/
//!   manifest.jsonl              supervisor: grid digest, cell/shard counts
//!   requests/shard-K.gG.jsonl   work order: header + one line per cell
//!   claims/shard-K.gG.claim     O_EXCL claim file (attach-mode workers)
//!   heartbeats/WORKER.jsonl     appended by the worker's heartbeat thread
//!   responses/shard-K.gG.jsonl  streamed results: header, done/failed, end
//!   events.jsonl                supervisor audit log (obs::DistEvent)
//!   shutdown                    marker: attached workers drain and exit
//! ```
//!
//! **Versioning and echo.** Every request and response header carries
//! [`PROTOCOL_VERSION`] and the grid digest. A worker refuses a request
//! whose version it does not speak; a supervisor rejects a response whose
//! version ([`ResponseFault::Stale`]) or grid/shard/generation echo
//! ([`ResponseFault::Invalid`]) does not match what it dispatched. The echo
//! is what makes re-dispatch safe: a revoked generation's late response can
//! never be confused with the replacement's.
//!
//! **Streaming and truncation.** Workers append one flushed line per
//! finished cell and an `end` footer with the final counts. A response
//! without a matching footer is a *partial* response: the parsed prefix is
//! still trustworthy (each line was flushed whole) and the supervisor
//! harvests it, so a worker crash wastes at most the cell in flight —
//! the spool-level analogue of the journal's torn-tail rule.
//!
//! Line formats:
//!
//! ```text
//! {"dist":"manifest","version":1,"grid":"<16 hex>","cells":N,"shards":K,"suite":"..."}
//! {"dist":"request","version":1,"grid":"<16 hex>","shard":K,"gen":G,"suite":"...",
//!  "cells":N,"deadline_ms":D,"max_attempts":A,"backoff_ms":B,"max_backoff_ms":C,
//!  "heartbeat_ms":H}
//! {"dist":"cell","id":"<16 hex>","index":I,"label":"...","seed":S}
//! {"dist":"claim","worker":"...","shard":K,"gen":G}
//! {"dist":"heartbeat","worker":"...","shard":K,"gen":G,"seq":N}
//! {"dist":"response","version":1,"grid":"<16 hex>","shard":K,"gen":G,"worker":"..."}
//! {"dist":"done","id":"<16 hex>","label":"...","seed":S,"attempts":A,"payload":[...]}
//! {"dist":"failed","id":"<16 hex>","label":"...","seed":S,"attempts":A,"panics":P,
//!  "deadline_kills":D,"cause":"...","message":"..."}
//! {"dist":"end","done":D,"failed":F}
//! ```

use crate::fabric::journal::{
    parse_id, parse_payload, render_payload, str_field, u64_field, DoneLine, JournalValue,
};
use crate::fabric::plan::CellId;
use crate::fabric::retry::AttemptStats;
use crate::repro::esc;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The wire protocol version; bumped on any incompatible change to the
/// line formats above. Echoed in every request and response header.
pub const PROTOCOL_VERSION: u64 = 1;

/// Path of the request file for `(shard, gen)`.
pub fn request_path(spool: &Path, shard: usize, gen: u64) -> PathBuf {
    spool.join("requests").join(format!("shard-{shard}.g{gen}.jsonl"))
}

/// Path of the response file for `(shard, gen)`.
pub fn response_path(spool: &Path, shard: usize, gen: u64) -> PathBuf {
    spool.join("responses").join(format!("shard-{shard}.g{gen}.jsonl"))
}

/// Path of the claim file for `(shard, gen)` (attach mode).
pub fn claim_path(spool: &Path, shard: usize, gen: u64) -> PathBuf {
    spool.join("claims").join(format!("shard-{shard}.g{gen}.claim"))
}

/// Path of `worker`'s heartbeat file.
pub fn heartbeat_path(spool: &Path, worker: &str) -> PathBuf {
    spool.join("heartbeats").join(format!("{worker}.jsonl"))
}

/// Path of the supervisor's manifest.
pub fn manifest_path(spool: &Path) -> PathBuf {
    spool.join("manifest.jsonl")
}

/// Path of the supervisor's audit event log.
pub fn events_path(spool: &Path) -> PathBuf {
    spool.join("events.jsonl")
}

/// Path of the shutdown marker.
pub fn shutdown_path(spool: &Path) -> PathBuf {
    spool.join("shutdown")
}

/// Creates the spool directory tree and writes the manifest.
///
/// # Errors
///
/// On filesystem failures.
pub fn init_spool(
    spool: &Path,
    grid: u64,
    cells: usize,
    shards: usize,
    suite: &str,
) -> Result<(), String> {
    for sub in ["requests", "claims", "heartbeats", "responses"] {
        std::fs::create_dir_all(spool.join(sub))
            .map_err(|e| format!("cannot create spool dir {}/{sub}: {e}", spool.display()))?;
    }
    let line = format!(
        "{{\"dist\":\"manifest\",\"version\":{PROTOCOL_VERSION},\"grid\":\"{grid:016x}\",\
         \"cells\":{cells},\"shards\":{shards},\"suite\":\"{}\"}}\n",
        esc(suite)
    );
    std::fs::write(manifest_path(spool), line)
        .map_err(|e| format!("cannot write spool manifest: {e}"))
}

/// A work order's header: everything a worker needs to execute the shard
/// with the *same* containment policy the single-process fabric would use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestHeader {
    /// Protocol version of the writer.
    pub version: u64,
    /// Grid digest; the worker echoes it so the supervisor can reject
    /// responses from a different grid.
    pub grid: u64,
    /// Shard index.
    pub shard: usize,
    /// Dispatch generation.
    pub gen: u64,
    /// Suite name (attach-mode workers serve only suites they host).
    pub suite: String,
    /// Number of cell lines that follow.
    pub cells: usize,
    /// Per-attempt wall-clock deadline in ms; 0 = none.
    pub deadline_ms: u64,
    /// Max attempts per cell (the single-process retry policy, mirrored).
    pub max_attempts: u32,
    /// Base backoff in ms.
    pub backoff_ms: u64,
    /// Backoff ceiling in ms.
    pub max_backoff_ms: u64,
    /// Interval the worker's heartbeat thread should append at, in ms.
    pub heartbeat_ms: u64,
}

/// One cell of a work order: identity only — the worker reconstructs (or
/// hosts) the runnable closure itself and matches it by [`CellId`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestCell {
    /// Content-addressed identity (must match the worker's own derivation).
    pub id: CellId,
    /// Input position in the supervisor's grid.
    pub index: usize,
    /// Display label.
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
}

/// Writes the request file for a shard dispatch, atomically (temp file +
/// rename) so a watching worker never observes a half-written order.
///
/// # Errors
///
/// On filesystem failures.
pub fn write_request(
    spool: &Path,
    header: &RequestHeader,
    cells: &[RequestCell],
) -> Result<PathBuf, String> {
    let mut text = format!(
        "{{\"dist\":\"request\",\"version\":{},\"grid\":\"{:016x}\",\"shard\":{},\"gen\":{},\
         \"suite\":\"{}\",\"cells\":{},\"deadline_ms\":{},\"max_attempts\":{},\"backoff_ms\":{},\
         \"max_backoff_ms\":{},\"heartbeat_ms\":{}}}\n",
        header.version,
        header.grid,
        header.shard,
        header.gen,
        esc(&header.suite),
        cells.len(),
        header.deadline_ms,
        header.max_attempts,
        header.backoff_ms,
        header.max_backoff_ms,
        header.heartbeat_ms,
    );
    for c in cells {
        let _ = writeln!(
            text,
            "{{\"dist\":\"cell\",\"id\":\"{}\",\"index\":{},\"label\":\"{}\",\"seed\":{}}}",
            c.id,
            c.index,
            esc(&c.label),
            c.seed
        );
    }
    let path = request_path(spool, header.shard, header.gen);
    let tmp = path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, text)
        .map_err(|e| format!("cannot write request {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path)
        .map_err(|e| format!("cannot publish request {}: {e}", path.display()))?;
    Ok(path)
}

/// Parses a request file.
///
/// # Errors
///
/// On malformed headers/cell lines, an unsupported protocol version, or a
/// cell count that does not match the header (a torn request must never be
/// half-served — requests are published by atomic rename, so this is
/// corruption, not streaming).
pub fn read_request(path: &Path) -> Result<(RequestHeader, Vec<RequestCell>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read request {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let head = lines.next().ok_or_else(|| format!("request {} is empty", path.display()))?;
    if str_field(head, "dist")? != "request" {
        return Err(format!("request {} does not start with a request header", path.display()));
    }
    let header = RequestHeader {
        version: u64_field(head, "version")?,
        grid: parse_grid(head)?,
        shard: usize::try_from(u64_field(head, "shard")?).map_err(|e| e.to_string())?,
        gen: u64_field(head, "gen")?,
        suite: str_field(head, "suite")?,
        cells: usize::try_from(u64_field(head, "cells")?).map_err(|e| e.to_string())?,
        deadline_ms: u64_field(head, "deadline_ms")?,
        max_attempts: u32::try_from(u64_field(head, "max_attempts")?).map_err(|e| e.to_string())?,
        backoff_ms: u64_field(head, "backoff_ms")?,
        max_backoff_ms: u64_field(head, "max_backoff_ms")?,
        heartbeat_ms: u64_field(head, "heartbeat_ms")?,
    };
    if header.version != PROTOCOL_VERSION {
        return Err(format!(
            "request {} speaks protocol v{}, this worker speaks v{PROTOCOL_VERSION}; \
             supervisor and worker binaries are out of step",
            path.display(),
            header.version
        ));
    }
    let mut cells = Vec::with_capacity(header.cells);
    for line in lines {
        if str_field(line, "dist")? != "cell" {
            return Err(format!("request {}: unexpected line {line:?}", path.display()));
        }
        cells.push(RequestCell {
            id: parse_id(line)?,
            index: usize::try_from(u64_field(line, "index")?).map_err(|e| e.to_string())?,
            label: str_field(line, "label")?,
            seed: u64_field(line, "seed")?,
        });
    }
    if cells.len() != header.cells {
        return Err(format!(
            "request {} header promises {} cell(s), found {}",
            path.display(),
            header.cells,
            cells.len()
        ));
    }
    Ok((header, cells))
}

fn parse_grid(line: &str) -> Result<u64, String> {
    let g = str_field(line, "grid")?;
    u64::from_str_radix(&g, 16).map_err(|e| format!("bad grid digest {g:?}: {e}"))
}

/// The worker side of a response file: header first, then one flushed line
/// per finished cell, then the `end` footer. Flushing per line is what
/// makes the supervisor's partial-harvest sound.
#[derive(Debug)]
pub struct ResponseWriter {
    file: File,
    done: usize,
    failed: usize,
}

impl ResponseWriter {
    /// Creates (truncating) the response file for `(shard, gen)` and writes
    /// the echo header.
    ///
    /// # Errors
    ///
    /// On filesystem failures.
    pub fn create(
        spool: &Path,
        shard: usize,
        gen: u64,
        grid: u64,
        worker: &str,
        version: u64,
    ) -> Result<ResponseWriter, String> {
        let path = response_path(spool, shard, gen);
        let mut file = File::create(&path)
            .map_err(|e| format!("cannot create response {}: {e}", path.display()))?;
        let head = format!(
            "{{\"dist\":\"response\",\"version\":{version},\"grid\":\"{grid:016x}\",\
             \"shard\":{shard},\"gen\":{gen},\"worker\":\"{}\"}}\n",
            esc(worker)
        );
        file.write_all(head.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot write response header: {e}"))?;
        Ok(ResponseWriter { file, done: 0, failed: 0 })
    }

    /// Raw line append — used by the chaos drill to plant interior garbage.
    pub(crate) fn append(&mut self, line: &str) -> Result<(), String> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append response line: {e}"))
    }

    /// Streams one completed cell.
    ///
    /// # Errors
    ///
    /// On filesystem failures.
    pub fn record_done(
        &mut self,
        id: CellId,
        label: &str,
        seed: u64,
        attempts: u32,
        payload: &[JournalValue],
    ) -> Result<(), String> {
        let mut line = format!(
            "{{\"dist\":\"done\",\"id\":\"{id}\",\"label\":\"{}\",\"seed\":{seed},\
             \"attempts\":{attempts},\"payload\":",
            esc(label)
        );
        render_payload(payload, &mut line);
        line.push_str("}\n");
        self.append(&line)?;
        self.done += 1;
        Ok(())
    }

    /// Streams one exhausted (quarantine-bound) cell.
    ///
    /// # Errors
    ///
    /// On filesystem failures.
    pub fn record_failed(
        &mut self,
        id: CellId,
        label: &str,
        seed: u64,
        stats: AttemptStats,
        cause: &str,
        message: &str,
    ) -> Result<(), String> {
        let line = format!(
            "{{\"dist\":\"failed\",\"id\":\"{id}\",\"label\":\"{}\",\"seed\":{seed},\
             \"attempts\":{},\"panics\":{},\"deadline_kills\":{},\"cause\":\"{cause}\",\
             \"message\":\"{}\"}}\n",
            esc(label),
            stats.attempts,
            stats.panics,
            stats.deadline_kills,
            esc(message)
        );
        self.append(&line)?;
        self.failed += 1;
        Ok(())
    }

    /// Writes the `end` footer with the final counts. A response without
    /// this footer is partial by definition.
    ///
    /// # Errors
    ///
    /// On filesystem failures.
    pub fn finish(mut self) -> Result<(), String> {
        let line =
            format!("{{\"dist\":\"end\",\"done\":{},\"failed\":{}}}\n", self.done, self.failed);
        self.append(&line)
    }
}

/// One streamed `failed` line: a cell the worker exhausted its per-cell
/// retry policy on (the distributed analogue of a quarantine record).
#[derive(Clone, Debug, PartialEq)]
pub struct FailedLine {
    /// The cell's content-addressed id.
    pub id: CellId,
    /// Display label.
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
    /// Attempts consumed on the worker.
    pub attempts: u32,
    /// Attempts that ended in a caught panic (per-cause accounting, so the
    /// supervisor's `FabricCounters` match a single-process run exactly).
    pub panics: u32,
    /// Attempts abandoned at the per-attempt wall-clock deadline.
    pub deadline_kills: u32,
    /// Failure cause tag (`panic`/`deadline`).
    pub cause: String,
    /// The last failure message.
    pub message: String,
}

/// What the supervisor expected the response to echo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseExpect {
    /// The dispatched grid digest.
    pub grid: u64,
    /// The dispatched shard.
    pub shard: usize,
    /// The dispatched generation.
    pub gen: u64,
}

/// Why a response was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseFault {
    /// The worker speaks a different protocol version — supervisor and
    /// worker binaries are out of step. Nothing in the file can be trusted.
    Stale(String),
    /// The response is corrupt, truncated mid-line in the interior, echoes
    /// the wrong grid/shard/generation, or its footer counts disagree with
    /// its lines.
    Invalid(String),
}

impl ResponseFault {
    /// The stable tag used in events.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResponseFault::Stale(_) => "stale_protocol",
            ResponseFault::Invalid(_) => "invalid_response",
        }
    }

    /// The human-readable detail.
    pub fn detail(&self) -> &str {
        match self {
            ResponseFault::Stale(d) | ResponseFault::Invalid(d) => d,
        }
    }
}

/// The supervisor's view of a (possibly still-growing) response file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedResponse {
    /// The worker id from the header, once the header exists.
    pub worker: Option<String>,
    /// Completed cells harvested from the valid prefix.
    pub done: Vec<DoneLine>,
    /// Exhausted cells from the valid prefix.
    pub failed: Vec<FailedLine>,
    /// True once the `end` footer is present with matching counts.
    pub complete: bool,
    /// A header/interior fault, if the response must be rejected.
    pub fault: Option<ResponseFault>,
}

/// Parses a response file's current contents against what the supervisor
/// dispatched. Never errors: a missing/empty file is simply "no response
/// yet", a torn *final* line is a worker mid-append (prefix harvested), and
/// header or interior damage is reported as a [`ResponseFault`] with the
/// valid prefix still available for harvesting (each earlier line was
/// flushed whole before the damage).
pub fn parse_response(text: &str, expect: &ResponseExpect) -> ParsedResponse {
    let mut out = ParsedResponse::default();
    let lines: Vec<&str> = text.lines().collect();
    let mut saw_header = false;
    let mut footer: Option<(u64, u64)> = None;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if footer.is_some() {
            out.fault = Some(ResponseFault::Invalid(format!("line {} after end footer", i + 1)));
            break;
        }
        let is_last = i + 1 == lines.len();
        let parsed: Result<(), LineIssue> = if saw_header {
            parse_body_line(line, &mut out, &mut footer)
        } else {
            saw_header = true;
            parse_header_line(line, expect, &mut out)
        };
        match parsed {
            Ok(()) => {}
            // Unparseable final line: the worker is (or was) mid-append —
            // streaming, not corruption. The harvested prefix stands.
            Err(LineIssue::Malformed(_)) if is_last => break,
            Err(LineIssue::Malformed(detail)) => {
                out.fault = Some(ResponseFault::Invalid(detail));
                break;
            }
            // A fully-parsed line that fails validation (version skew, echo
            // mismatch) poisons the file wherever it sits.
            Err(LineIssue::Reject(fault)) => {
                out.fault = Some(fault);
                break;
            }
        }
    }
    if let Some((d, f)) = footer {
        if d == out.done.len() as u64 && f == out.failed.len() as u64 {
            out.complete = true;
        } else if out.fault.is_none() {
            out.fault = Some(ResponseFault::Invalid(format!(
                "end footer promises done={d} failed={f}, file has done={} failed={}",
                out.done.len(),
                out.failed.len()
            )));
        }
    }
    out
}

/// How a single response line failed: unparseable (a torn tail if final,
/// corruption otherwise) vs parsed-but-rejected (always a fault).
enum LineIssue {
    Malformed(String),
    Reject(ResponseFault),
}

fn parse_header_line(
    line: &str,
    expect: &ResponseExpect,
    out: &mut ParsedResponse,
) -> Result<(), LineIssue> {
    let bad = |e: String| LineIssue::Malformed(format!("response header: {e}"));
    if str_field(line, "dist").map_err(bad)? != "response" {
        return Err(LineIssue::Malformed("response does not start with a header".to_owned()));
    }
    let version = u64_field(line, "version").map_err(bad)?;
    if version != PROTOCOL_VERSION {
        return Err(LineIssue::Reject(ResponseFault::Stale(format!(
            "worker speaks protocol v{version}, supervisor speaks v{PROTOCOL_VERSION}"
        ))));
    }
    let grid = parse_grid(line).map_err(bad)?;
    let shard = u64_field(line, "shard").map_err(bad)?;
    let gen = u64_field(line, "gen").map_err(bad)?;
    if grid != expect.grid || shard != expect.shard as u64 || gen != expect.gen {
        return Err(LineIssue::Reject(ResponseFault::Invalid(format!(
            "response echoes grid={grid:016x} shard={shard} gen={gen}, \
             dispatched grid={:016x} shard={} gen={}",
            expect.grid, expect.shard, expect.gen
        ))));
    }
    out.worker = Some(str_field(line, "worker").map_err(bad)?);
    Ok(())
}

fn parse_body_line(
    line: &str,
    out: &mut ParsedResponse,
    footer: &mut Option<(u64, u64)>,
) -> Result<(), LineIssue> {
    let bad = |e: String| LineIssue::Malformed(format!("response line: {e}"));
    match str_field(line, "dist").map_err(bad)?.as_str() {
        "done" => {
            out.done.push(DoneLine {
                id: parse_id(line).map_err(bad)?,
                label: str_field(line, "label").map_err(bad)?,
                seed: u64_field(line, "seed").map_err(bad)?,
                attempts: u32::try_from(u64_field(line, "attempts").map_err(bad)?)
                    .map_err(|e| bad(e.to_string()))?,
                payload: parse_payload(line).map_err(bad)?,
            });
            Ok(())
        }
        "failed" => {
            out.failed.push(FailedLine {
                id: parse_id(line).map_err(bad)?,
                label: str_field(line, "label").map_err(bad)?,
                seed: u64_field(line, "seed").map_err(bad)?,
                attempts: u32::try_from(u64_field(line, "attempts").map_err(bad)?)
                    .map_err(|e| bad(e.to_string()))?,
                panics: u32::try_from(u64_field(line, "panics").map_err(bad)?)
                    .map_err(|e| bad(e.to_string()))?,
                deadline_kills: u32::try_from(u64_field(line, "deadline_kills").map_err(bad)?)
                    .map_err(|e| bad(e.to_string()))?,
                cause: str_field(line, "cause").map_err(bad)?,
                message: str_field(line, "message").map_err(bad)?,
            });
            Ok(())
        }
        "end" => {
            *footer = Some((
                u64_field(line, "done").map_err(bad)?,
                u64_field(line, "failed").map_err(bad)?,
            ));
            Ok(())
        }
        other => Err(LineIssue::Malformed(format!("unknown response line kind {other:?}"))),
    }
}

/// Appends one heartbeat line for `worker` and flushes it.
///
/// # Errors
///
/// On filesystem failures.
pub fn append_heartbeat(
    spool: &Path,
    worker: &str,
    shard: usize,
    gen: u64,
    seq: u64,
) -> Result<(), String> {
    let path = heartbeat_path(spool, worker);
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("cannot open heartbeat {}: {e}", path.display()))?;
    let line = format!(
        "{{\"dist\":\"heartbeat\",\"worker\":\"{}\",\"shard\":{shard},\"gen\":{gen},\"seq\":{seq}}}\n",
        esc(worker)
    );
    f.write_all(line.as_bytes())
        .and_then(|()| f.flush())
        .map_err(|e| format!("cannot append heartbeat: {e}"))
}

/// Reads the highest heartbeat sequence `worker` has appended **for
/// `(shard, gen)`**, skipping any torn final line. `None` when the file
/// does not exist or holds no complete line for that dispatch yet.
///
/// Filtering by the shard/gen fields on each line matters: an attached
/// worker keeps one id (and one heartbeat file) across every request it
/// serves, and its heartbeat thread restarts `seq` at 1 per request. The
/// file-wide maximum would belong to some *earlier* dispatch, and fresh
/// beats below that stale maximum would never advance the current lease's
/// liveness clock — a live worker revoked as a `heartbeat_lapse`.
pub fn read_heartbeat_seq(spool: &Path, worker: &str, shard: usize, gen: u64) -> Option<u64> {
    let text = std::fs::read_to_string(heartbeat_path(spool, worker)).ok()?;
    text.lines()
        .filter(|l| {
            u64_field(l, "shard").is_ok_and(|s| s == shard as u64)
                && u64_field(l, "gen").is_ok_and(|g| g == gen)
        })
        .filter_map(|l| u64_field(l, "seq").ok())
        .max()
}

/// Attempts to claim `(shard, gen)` for `worker` by O_EXCL-creating the
/// claim file. Exactly one worker can win; the rest see `false`.
///
/// # Errors
///
/// On filesystem failures other than "already claimed".
pub fn try_claim(spool: &Path, shard: usize, gen: u64, worker: &str) -> Result<bool, String> {
    let path = claim_path(spool, shard, gen);
    match OpenOptions::new().create_new(true).write(true).open(&path) {
        Ok(mut f) => {
            let line = format!(
                "{{\"dist\":\"claim\",\"worker\":\"{}\",\"shard\":{shard},\"gen\":{gen}}}\n",
                esc(worker)
            );
            f.write_all(line.as_bytes())
                .and_then(|()| f.flush())
                .map_err(|e| format!("cannot write claim {}: {e}", path.display()))?;
            Ok(true)
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(format!("cannot claim {}: {e}", path.display())),
    }
}

/// Reads who claimed `(shard, gen)`, if anyone has (and the claim line is
/// fully written).
pub fn read_claim(spool: &Path, shard: usize, gen: u64) -> Option<String> {
    let text = std::fs::read_to_string(claim_path(spool, shard, gen)).ok()?;
    text.lines().find_map(|l| str_field(l, "worker").ok())
}

/// Drops the shutdown marker: attached workers drain and exit.
///
/// # Errors
///
/// On filesystem failures.
pub fn write_shutdown(spool: &Path) -> Result<(), String> {
    std::fs::write(shutdown_path(spool), b"shutdown\n")
        .map_err(|e| format!("cannot write shutdown marker: {e}"))
}

/// True once the supervisor has requested shutdown.
pub fn shutdown_requested(spool: &Path) -> bool {
    shutdown_path(spool).exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::plan::Fingerprint;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fabric-wire-{}-{name}", std::process::id()))
    }

    fn header(grid: u64, shard: usize, gen: u64) -> RequestHeader {
        RequestHeader {
            version: PROTOCOL_VERSION,
            grid,
            shard,
            gen,
            suite: "walk".to_owned(),
            cells: 0,
            deadline_ms: 0,
            max_attempts: 3,
            backoff_ms: 100,
            max_backoff_ms: 5000,
            heartbeat_ms: 200,
        }
    }

    fn cell(i: usize) -> RequestCell {
        RequestCell {
            id: CellId::derive(&format!("c{i}"), i as u64, Fingerprint::new()),
            index: i,
            label: format!("c{i}"),
            seed: i as u64,
        }
    }

    #[test]
    fn requests_roundtrip_and_reject_version_skew() {
        let spool = tmp("req");
        let _ = std::fs::remove_dir_all(&spool);
        init_spool(&spool, 0xabcd, 3, 2, "walk").expect("init");
        let cells = vec![cell(0), cell(2)];
        let mut h = header(0xabcd, 1, 0);
        h.cells = cells.len();
        let path = write_request(&spool, &h, &cells).expect("write");
        let (rh, rc) = read_request(&path).expect("read");
        assert_eq!(rh, h);
        assert_eq!(rc, cells);
        // Version skew is refused with both versions named.
        let skew =
            std::fs::read_to_string(&path).unwrap().replacen("\"version\":1", "\"version\":999", 1);
        std::fs::write(&path, skew).unwrap();
        let err = read_request(&path).unwrap_err();
        assert!(err.contains("v999") && err.contains("out of step"), "{err}");
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn responses_stream_and_parse_with_prefix_harvest() {
        let spool = tmp("resp");
        let _ = std::fs::remove_dir_all(&spool);
        init_spool(&spool, 0x11, 2, 1, "walk").expect("init");
        let expect = ResponseExpect { grid: 0x11, shard: 0, gen: 0 };
        let mut w =
            ResponseWriter::create(&spool, 0, 0, 0x11, "w0-g0", PROTOCOL_VERSION).expect("create");
        let id = CellId::derive("a", 1, Fingerprint::new());
        w.record_done(id, "a", 1, 1, &[JournalValue::U64(42)]).expect("done");
        // Mid-stream: header + one done line, no footer → partial, harvestable.
        let text = std::fs::read_to_string(response_path(&spool, 0, 0)).unwrap();
        let p = parse_response(&text, &expect);
        assert_eq!(p.worker.as_deref(), Some("w0-g0"));
        assert_eq!(p.done.len(), 1);
        assert_eq!(p.done[0].payload, vec![JournalValue::U64(42)]);
        assert!(!p.complete && p.fault.is_none());
        // A torn final line is streaming, not a fault; the prefix survives.
        let torn = format!("{text}{{\"dist\":\"done\",\"id\":\"00");
        let p = parse_response(&torn, &expect);
        assert_eq!(p.done.len(), 1);
        assert!(!p.complete && p.fault.is_none(), "{:?}", p.fault);
        // Footer completes it.
        let stats = AttemptStats { attempts: 3, panics: 3, deadline_kills: 0 };
        w.record_failed(CellId::derive("b", 2, Fingerprint::new()), "b", 2, stats, "panic", "boom")
            .expect("failed");
        w.finish().expect("finish");
        let text = std::fs::read_to_string(response_path(&spool, 0, 0)).unwrap();
        let p = parse_response(&text, &expect);
        assert!(p.complete, "{p:?}");
        assert_eq!(p.failed.len(), 1);
        assert_eq!(p.failed[0].cause, "panic");
        assert_eq!((p.failed[0].panics, p.failed[0].deadline_kills), (3, 0));
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn responses_reject_version_skew_echo_mismatch_and_bad_footer() {
        let expect = ResponseExpect { grid: 0x11, shard: 0, gen: 1 };
        let stale = "{\"dist\":\"response\",\"version\":0,\"grid\":\"0000000000000011\",\
                     \"shard\":0,\"gen\":1,\"worker\":\"w\"}\n";
        let p = parse_response(stale, &expect);
        assert!(matches!(p.fault, Some(ResponseFault::Stale(_))), "{p:?}");
        // A revoked generation's echo must not pass for the replacement's.
        let old_gen = "{\"dist\":\"response\",\"version\":1,\"grid\":\"0000000000000011\",\
                       \"shard\":0,\"gen\":0,\"worker\":\"w\"}\n";
        let p = parse_response(old_gen, &expect);
        match &p.fault {
            Some(ResponseFault::Invalid(d)) => assert!(d.contains("gen=0"), "{d}"),
            other => panic!("expected echo rejection, got {other:?}"),
        }
        // Footer counts must match the lines actually present.
        let lying = "{\"dist\":\"response\",\"version\":1,\"grid\":\"0000000000000011\",\
                     \"shard\":0,\"gen\":1,\"worker\":\"w\"}\n{\"dist\":\"end\",\"done\":5,\"failed\":0}\n";
        let p = parse_response(lying, &expect);
        assert!(!p.complete);
        match &p.fault {
            Some(ResponseFault::Invalid(d)) => assert!(d.contains("promises"), "{d}"),
            other => panic!("expected footer rejection, got {other:?}"),
        }
        // Interior corruption faults the file but keeps the valid prefix.
        let id = CellId::derive("a", 1, Fingerprint::new());
        let corrupt = format!(
            "{{\"dist\":\"response\",\"version\":1,\"grid\":\"0000000000000011\",\
             \"shard\":0,\"gen\":1,\"worker\":\"w\"}}\n\
             {{\"dist\":\"done\",\"id\":\"{id}\",\"label\":\"a\",\"seed\":1,\"attempts\":1,\
             \"payload\":[7]}}\nGARBAGE\n{{\"dist\":\"end\",\"done\":1,\"failed\":0}}\n"
        );
        let p = parse_response(&corrupt, &expect);
        assert_eq!(p.done.len(), 1, "prefix before the damage is harvestable");
        assert!(matches!(p.fault, Some(ResponseFault::Invalid(_))), "{p:?}");
        assert!(!p.complete);
    }

    #[test]
    fn heartbeats_and_claims_roundtrip() {
        let spool = tmp("hb");
        let _ = std::fs::remove_dir_all(&spool);
        init_spool(&spool, 1, 1, 1, "walk").expect("init");
        assert_eq!(read_heartbeat_seq(&spool, "w0", 0, 0), None);
        append_heartbeat(&spool, "w0", 0, 0, 1).expect("hb1");
        append_heartbeat(&spool, "w0", 0, 0, 2).expect("hb2");
        assert_eq!(read_heartbeat_seq(&spool, "w0", 0, 0), Some(2));
        // Exactly one claimant wins; the claim names the winner.
        assert!(try_claim(&spool, 0, 0, "w0").expect("claim"));
        assert!(!try_claim(&spool, 0, 0, "other").expect("reclaim"));
        assert_eq!(read_claim(&spool, 0, 0), Some("w0".to_owned()));
        assert!(!shutdown_requested(&spool));
        write_shutdown(&spool).expect("shutdown");
        assert!(shutdown_requested(&spool));
        let _ = std::fs::remove_dir_all(&spool);
    }

    /// An attached worker reuses one heartbeat file across requests, with
    /// `seq` restarting at 1 per request. The liveness read must see only
    /// the asked-for dispatch's lines: a later generation's fresh low seqs
    /// must not be shadowed by an earlier request's higher maximum.
    #[test]
    fn heartbeat_reads_are_scoped_to_shard_and_gen() {
        let spool = tmp("hb-scope");
        let _ = std::fs::remove_dir_all(&spool);
        init_spool(&spool, 1, 1, 1, "walk").expect("init");
        // A long first request on shard 1 drives seq far up…
        for seq in 1..=50 {
            append_heartbeat(&spool, "w", 1, 0, seq).expect("hb");
        }
        // …then the same worker serves shard 0 gen 1, seq restarting at 1.
        append_heartbeat(&spool, "w", 0, 1, 1).expect("hb");
        append_heartbeat(&spool, "w", 0, 1, 2).expect("hb");
        assert_eq!(read_heartbeat_seq(&spool, "w", 1, 0), Some(50));
        assert_eq!(
            read_heartbeat_seq(&spool, "w", 0, 1),
            Some(2),
            "fresh beats must not be masked by another dispatch's maximum"
        );
        assert_eq!(read_heartbeat_seq(&spool, "w", 2, 0), None, "no lines for that dispatch");
        let _ = std::fs::remove_dir_all(&spool);
    }
}
