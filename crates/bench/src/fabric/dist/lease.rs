//! The lease state machine: who owns a shard, until when, and why it was
//! taken away.
//!
//! A lease is the supervisor's claim ledger for one `(shard, generation)`
//! dispatch: granted when a worker is spawned (or an attached worker claims
//! the request file), renewed every time the worker's streamed response
//! file shows **progress** (a new completed cell), and revoked when the
//! deadline passes without progress. Liveness and progress are deliberately
//! separate signals:
//!
//! * **Heartbeats** prove the worker process is alive (its heartbeat thread
//!   still appends). A lapse means the process is gone or wedged solid —
//!   cause [`RevokeCause::HeartbeatLapse`].
//! * **Progress** proves the worker is doing useful work. A worker whose
//!   heartbeats keep arriving but whose response file stops growing past
//!   the lease deadline is *stalled* (livelocked cell, infinite loop below
//!   the per-attempt deadline radar) — cause [`RevokeCause::Stall`].
//! * A worker whose **process exits** without a complete response crashed —
//!   cause [`RevokeCause::Crash`], detected by the supervisor's `try_wait`,
//!   never by this module.
//!
//! Everything here is pure: time enters only as caller-supplied millisecond
//! readings (the supervisor passes wall-clock milliseconds; tests pass
//! literals), so every edge — completion exactly at the deadline, a
//! heartbeat racing a revocation — is unit-testable without sleeping.
//! Boundary law: **completion at exactly the deadline wins**; expiry is
//! strictly after ([`Lease::assess`] fires only when `now > deadline`), and
//! the supervisor harvests any complete response before assessing, so a
//! worker that finishes on the stroke of its deadline is never revoked.

/// Why the supervisor revoked a lease. Carried into
/// [`obs::DistEvent::LeaseRevoked`] and the counter accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RevokeCause {
    /// The worker process exited without a complete, valid response.
    Crash,
    /// No heartbeat inside the liveness window: the process is gone or
    /// wedged too hard to run its heartbeat thread.
    HeartbeatLapse,
    /// Heartbeats kept arriving but no new cell completed before the lease
    /// deadline: the worker is alive but not progressing.
    Stall,
    /// The worker's response failed validation (corrupt lines, wrong grid,
    /// or a stale protocol version).
    InvalidResponse,
}

impl RevokeCause {
    /// The stable tag used in events and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            RevokeCause::Crash => "crash",
            RevokeCause::HeartbeatLapse => "heartbeat_lapse",
            RevokeCause::Stall => "stall",
            RevokeCause::InvalidResponse => "invalid_response",
        }
    }
}

/// One granted lease: a shard/generation owned by a named worker, with a
/// progress-renewed deadline and a liveness clock.
#[derive(Clone, Debug)]
pub struct Lease {
    /// The shard this lease covers.
    pub shard: usize,
    /// The dispatch generation (0 = first dispatch, +1 per re-dispatch).
    pub gen: u64,
    /// The worker id the supervisor assigned (or the attached worker chose).
    pub worker: String,
    /// When the lease was granted (ms).
    pub granted_ms: u64,
    /// The lease expires strictly *after* this instant; renewed to
    /// `now + lease_ms` on every progress observation.
    pub deadline_ms: u64,
    /// Last instant a fresh heartbeat was observed (starts at grant).
    pub last_heartbeat_ms: u64,
    /// Highest heartbeat sequence number seen (monotone per worker file).
    pub heartbeat_seq: u64,
    /// Cells observed complete in the streamed response so far.
    pub progress: usize,
}

impl Lease {
    /// Grants a lease at `now_ms` running for `lease_ms`.
    pub fn grant(shard: usize, gen: u64, worker: String, now_ms: u64, lease_ms: u64) -> Lease {
        Lease {
            shard,
            gen,
            worker,
            granted_ms: now_ms,
            deadline_ms: now_ms.saturating_add(lease_ms),
            last_heartbeat_ms: now_ms,
            heartbeat_seq: 0,
            progress: 0,
        }
    }

    /// Records a heartbeat observation: the worker's heartbeat file reached
    /// sequence `seq`. Only a *fresh* sequence advances the liveness clock —
    /// re-reading the same last line must not keep a dead worker alive.
    pub fn observe_heartbeat(&mut self, seq: u64, now_ms: u64) {
        if seq > self.heartbeat_seq {
            self.heartbeat_seq = seq;
            self.last_heartbeat_ms = now_ms;
        }
    }

    /// Records a progress observation: `cells_done` cells are now complete
    /// in the streamed response. New progress renews the deadline to
    /// `now + lease_ms` — a worker steadily finishing cells keeps its lease
    /// however long the whole shard takes.
    pub fn observe_progress(&mut self, cells_done: usize, now_ms: u64, lease_ms: u64) {
        if cells_done > self.progress {
            self.progress = cells_done;
            self.deadline_ms = now_ms.saturating_add(lease_ms);
        }
    }

    /// Assesses the lease at `now_ms`: `None` while healthy, or the cause
    /// the supervisor must revoke it for. Deadline expiry is **strictly
    /// after** `deadline_ms` — a worker observed complete at exactly the
    /// deadline wins, because the supervisor checks completion first.
    pub fn assess(&self, now_ms: u64, heartbeat_timeout_ms: u64) -> Option<RevokeCause> {
        let silent_for = now_ms.saturating_sub(self.last_heartbeat_ms);
        if silent_for > heartbeat_timeout_ms {
            return Some(RevokeCause::HeartbeatLapse);
        }
        if now_ms > self.deadline_ms {
            return Some(RevokeCause::Stall);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease() -> Lease {
        // Granted at t=1000ms, 500ms lease.
        Lease::grant(2, 0, "w2-g0".to_owned(), 1000, 500)
    }

    #[test]
    fn finishing_exactly_at_the_deadline_wins() {
        let mut l = lease();
        // Heartbeats stay fresh throughout.
        l.observe_heartbeat(1, 1400);
        // At exactly deadline_ms the lease is still healthy: the supervisor
        // checks response completeness before assessing, so a worker whose
        // final cell lands on the stroke of the deadline is harvested, not
        // revoked.
        assert_eq!(l.deadline_ms, 1500);
        assert_eq!(l.assess(1500, 10_000), None, "expiry is strictly after the deadline");
        assert_eq!(l.assess(1501, 10_000), Some(RevokeCause::Stall));
    }

    #[test]
    fn progress_renews_the_deadline_but_heartbeats_do_not() {
        let mut l = lease();
        l.observe_heartbeat(1, 1499);
        assert_eq!(l.deadline_ms, 1500, "liveness alone must not extend the lease");
        l.observe_progress(1, 1400, 500);
        assert_eq!(l.deadline_ms, 1900, "a completed cell renews the lease");
        // Re-observing the same progress count is not new progress.
        l.observe_progress(1, 1890, 500);
        assert_eq!(l.deadline_ms, 1900);
        assert_eq!(l.progress, 1);
    }

    #[test]
    fn stall_vs_heartbeat_lapse_are_distinguished() {
        let mut l = lease();
        // Case 1: heartbeats fresh, no progress past deadline → Stall.
        l.observe_heartbeat(3, 1600);
        assert_eq!(l.assess(1601, 10_000), Some(RevokeCause::Stall));
        // Case 2: heartbeats silent past the liveness window → lapse, even
        // before the lease deadline.
        let l2 = lease();
        assert_eq!(l2.assess(1400, 300), Some(RevokeCause::HeartbeatLapse));
        // Within the window and the deadline: healthy.
        assert_eq!(l2.assess(1200, 300), None);
    }

    #[test]
    fn stale_heartbeat_rereads_do_not_prove_liveness() {
        let mut l = lease();
        l.observe_heartbeat(5, 1100);
        // The same sequence re-read later must not advance the clock: the
        // file's last line does not change when the worker dies.
        l.observe_heartbeat(5, 1900);
        assert_eq!(l.last_heartbeat_ms, 1100);
        assert_eq!(l.assess(1900, 700), Some(RevokeCause::HeartbeatLapse));
    }
}
