//! # bench-harness — figure regeneration harnesses
//!
//! One module per figure of the paper's evaluation. Every module exposes
//! `run(scale) -> String` returning the printed table; the `src/bin/fig*`
//! binaries are thin wrappers, and the custom `figures` bench target runs
//! every module at [`Scale::Smoke`] so `cargo bench` regenerates all rows.
//!
//! Scales:
//! * [`Scale::Smoke`] — seconds; CI and `cargo bench`.
//! * [`Scale::Quick`] — minutes; the default for the binaries.
//! * [`Scale::Full`] — closest to the paper's parameters that a laptop-class
//!   machine handles (see EXPERIMENTS.md for the documented scaling).

pub mod fabric;
pub mod figs;
pub mod repro;
pub mod runner;

pub use figs::*;

/// Experiment scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity scale.
    Smoke,
    /// Minutes-long default scale.
    Quick,
    /// Paper-faithful scale.
    Full,
}

impl Scale {
    /// Parses `--smoke`/`--quick`/`--full` (and a tolerated `--jobs N`) from
    /// the process arguments, defaulting to `Quick`.
    pub fn from_args() -> Scale {
        Cli::from_args().scale
    }

    /// A stable lowercase name, used in fabric config fingerprints (a
    /// journal written at one scale must not resume a sweep at another).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Parsed command-line options shared by the figure binaries: an experiment
/// [`Scale`], an optional sweep worker count, and an optional trace
/// directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// The experiment scale.
    pub scale: Scale,
    /// `--jobs N` if given; binaries fall back to
    /// [`runner::default_jobs`] (which honours `SWEEP_JOBS`) when absent.
    pub jobs: Option<usize>,
    /// `--trace DIR` if given: the directory where per-cell JSONL traces are
    /// written (one file per cell, see [`obs::jsonl_sink_in`]).
    pub trace: Option<std::path::PathBuf>,
    /// `--journal PATH` if given: the crash-safe sweep journal
    /// ([`fabric::run_fabric`] checkpoints each completed cell there and
    /// resumes from it after a kill).
    pub journal: Option<std::path::PathBuf>,
}

impl Cli {
    /// Parses `--smoke`/`--quick`/`--full`, `--jobs N` (or `--jobs=N`),
    /// `--trace DIR` (or `--trace=DIR`), and `--journal PATH` (or
    /// `--journal=PATH`) from the process arguments. Exits with a usage
    /// message on anything else.
    pub fn from_args() -> Cli {
        Cli::parse(std::env::args().skip(1)).unwrap_or_else(|bad| {
            eprintln!(
                "unknown argument `{bad}` \
                 (expected --smoke/--quick/--full/--jobs N/--trace DIR/--journal PATH)"
            );
            std::process::exit(2);
        })
    }

    fn parse(args: impl Iterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli { scale: Scale::Quick, jobs: None, trace: None, journal: None };
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => cli.scale = Scale::Smoke,
                "--quick" => cli.scale = Scale::Quick,
                "--full" => cli.scale = Scale::Full,
                "--jobs" => {
                    let v = args.next().ok_or_else(|| "--jobs (missing count)".to_owned())?;
                    cli.jobs = Some(v.parse::<usize>().map_err(|_| format!("--jobs {v}"))?);
                }
                "--trace" => {
                    let v = args.next().ok_or_else(|| "--trace (missing dir)".to_owned())?;
                    cli.trace = Some(v.into());
                }
                "--journal" => {
                    let v = args.next().ok_or_else(|| "--journal (missing path)".to_owned())?;
                    cli.journal = Some(v.into());
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        cli.jobs = Some(v.parse::<usize>().map_err(|_| format!("--jobs={v}"))?);
                    } else if let Some(v) = other.strip_prefix("--trace=") {
                        cli.trace = Some(v.into());
                    } else if let Some(v) = other.strip_prefix("--journal=") {
                        cli.journal = Some(v.into());
                    } else {
                        return Err(a);
                    }
                }
            }
        }
        if cli.jobs == Some(0) {
            return Err("--jobs 0".to_owned());
        }
        Ok(cli)
    }

    /// The sweep worker count: `--jobs` if given, else
    /// [`runner::default_jobs`].
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(runner::default_jobs)
    }

    /// The trace output directory: `--trace` if given, else the
    /// `SWEEP_TRACE` environment variable, else `None` (tracing disabled).
    pub fn trace_dir(&self) -> Option<std::path::PathBuf> {
        self.trace.clone().or_else(|| std::env::var_os("SWEEP_TRACE").map(Into::into))
    }

    /// The sweep journal path: `--journal` if given, else the
    /// `SWEEP_JOURNAL` environment variable, else `None` (checkpointing
    /// disabled; the sweep runs ephemerally).
    pub fn journal_path(&self) -> Option<std::path::PathBuf> {
        self.journal.clone().or_else(|| std::env::var_os("SWEEP_JOURNAL").map(Into::into))
    }
}

/// Renders an aligned text table: a header row plus data rows.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(ToString::to_string).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats bits/second as Mb/s.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// Formats `100·x/base` as a percentage with `decimals` fraction digits, or
/// `"-"` when the baseline is zero, negative, or non-finite. Starved cells
/// (a subflow killed by wireless loss, a zero-goodput run) must render as a
/// placeholder, not divide by zero.
pub fn pct_of(x: f64, base: f64, decimals: usize) -> String {
    if base > 0.0 && base.is_finite() {
        format!("{:.*}%", decimals, 100.0 * x / base)
    } else {
        "-".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["alg", "energy"],
            &[vec!["lia".into(), "10.0".into()], vec!["dts-phi".into(), "8.123".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("lia    "));
    }

    #[test]
    fn mbps_formats() {
        assert_eq!(mbps(1_500_000.0), "1.50");
    }

    #[test]
    fn pct_of_guards_degenerate_baselines() {
        assert_eq!(pct_of(25.0, 50.0, 0), "50%");
        assert_eq!(pct_of(1.0, 3.0, 1), "33.3%");
        assert_eq!(pct_of(1.0, 0.0, 0), "-");
        assert_eq!(pct_of(1.0, -2.0, 0), "-");
        assert_eq!(pct_of(1.0, f64::INFINITY, 0), "-");
        assert_eq!(pct_of(1.0, f64::NAN, 0), "-");
    }

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| (*s).to_owned()))
    }

    fn cli(scale: Scale, jobs: Option<usize>) -> Cli {
        Cli { scale, jobs, trace: None, journal: None }
    }

    #[test]
    fn cli_parses_scale_and_jobs() {
        assert_eq!(parse(&[]), Ok(cli(Scale::Quick, None)));
        assert_eq!(parse(&["--smoke"]), Ok(cli(Scale::Smoke, None)));
        assert_eq!(parse(&["--full", "--jobs", "4"]), Ok(cli(Scale::Full, Some(4))));
        assert_eq!(parse(&["--jobs=2"]), Ok(cli(Scale::Quick, Some(2))));
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "zero"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err(), "a zero worker count is a usage error");
        assert!(parse(&["--jobs=0"]).is_err(), "the = form must reject zero too");
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn cli_parses_trace_dir() {
        let c = parse(&["--trace", "out/traces"]).unwrap();
        assert_eq!(c.trace, Some(std::path::PathBuf::from("out/traces")));
        let c = parse(&["--trace=t", "--smoke"]).unwrap();
        assert_eq!(c.trace, Some(std::path::PathBuf::from("t")));
        assert_eq!(c.scale, Scale::Smoke);
        assert!(parse(&["--trace"]).is_err());
        // The --trace flag wins over the SWEEP_TRACE env fallback.
        assert_eq!(c.trace_dir(), Some(std::path::PathBuf::from("t")));
        assert_eq!(parse(&[]).unwrap().trace, None);
    }

    #[test]
    fn cli_parses_journal_path() {
        let c = parse(&["--journal", "out/j.jsonl"]).unwrap();
        assert_eq!(c.journal, Some(std::path::PathBuf::from("out/j.jsonl")));
        // The --journal flag wins over the SWEEP_JOURNAL env fallback.
        assert_eq!(c.journal_path(), Some(std::path::PathBuf::from("out/j.jsonl")));
        let c = parse(&["--journal=j", "--smoke"]).unwrap();
        assert_eq!(c.journal, Some(std::path::PathBuf::from("j")));
        assert!(parse(&["--journal"]).is_err());
        assert_eq!(parse(&[]).unwrap().journal, None);
    }
}
