//! # bench-harness — figure regeneration harnesses
//!
//! One module per figure of the paper's evaluation. Every module exposes
//! `run(scale) -> String` returning the printed table; the `src/bin/fig*`
//! binaries are thin wrappers, and the custom `figures` bench target runs
//! every module at [`Scale::Smoke`] so `cargo bench` regenerates all rows.
//!
//! Scales:
//! * [`Scale::Smoke`] — seconds; CI and `cargo bench`.
//! * [`Scale::Quick`] — minutes; the default for the binaries.
//! * [`Scale::Full`] — closest to the paper's parameters that a laptop-class
//!   machine handles (see EXPERIMENTS.md for the documented scaling).

pub mod fabric;
pub mod figs;
pub mod repro;
pub mod runner;

pub use figs::*;

/// Experiment scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity scale.
    Smoke,
    /// Minutes-long default scale.
    Quick,
    /// Paper-faithful scale.
    Full,
}

impl Scale {
    /// Parses `--smoke`/`--quick`/`--full` (and a tolerated `--jobs N`) from
    /// the process arguments, defaulting to `Quick`.
    pub fn from_args() -> Scale {
        Cli::from_args().scale
    }

    /// A stable lowercase name, used in fabric config fingerprints (a
    /// journal written at one scale must not resume a sweep at another).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// The worker-side identity of a distributed fabric process, parsed from
/// the `--dist-*` flags a supervisor passes when it spawns workers (see
/// [`fabric::dist`]). All four flags travel together; a partial set is a
/// usage error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistWorkerCli {
    /// The spool directory shared with the supervisor.
    pub spool: std::path::PathBuf,
    /// The shard index this worker serves.
    pub shard: usize,
    /// The lease generation the request file is named for.
    pub gen: u64,
    /// The worker id the supervisor assigned (names the heartbeat file).
    pub id: String,
}

/// Parsed command-line options shared by the figure binaries: an experiment
/// [`Scale`], an optional sweep worker count, and an optional trace
/// directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// The experiment scale.
    pub scale: Scale,
    /// `--jobs N` if given; binaries fall back to
    /// [`runner::default_jobs`] (which honours `SWEEP_JOBS`) when absent.
    pub jobs: Option<usize>,
    /// `--trace DIR` if given: the directory where per-cell JSONL traces are
    /// written (one file per cell, see [`obs::jsonl_sink_in`]).
    pub trace: Option<std::path::PathBuf>,
    /// `--journal PATH` if given: the crash-safe sweep journal
    /// ([`fabric::run_fabric`] checkpoints each completed cell there and
    /// resumes from it after a kill).
    pub journal: Option<std::path::PathBuf>,
    /// `--workers N` if given: the distributed fabric supervises N worker
    /// *processes* (vs `--jobs`, threads inside one process). Binaries fall
    /// back to `SWEEP_WORKERS`, else single-process execution.
    pub workers: Option<usize>,
    /// `--spool DIR` if given: the spool directory the distributed fabric
    /// exchanges request/response/heartbeat files through. Defaults to a
    /// per-run temporary directory.
    pub spool: Option<std::path::PathBuf>,
    /// Set when this process was spawned *as* a distributed worker
    /// (`--dist-worker SPOOL --dist-shard K --dist-gen G --dist-id ID`):
    /// it serves its shard and exits instead of supervising.
    pub dist: Option<DistWorkerCli>,
}

impl Cli {
    /// Parses `--smoke`/`--quick`/`--full`, `--jobs N` (or `--jobs=N`),
    /// `--trace DIR` (or `--trace=DIR`), `--journal PATH` (or
    /// `--journal=PATH`), `--workers N` (or `--workers=N`), `--spool DIR`
    /// (or `--spool=DIR`), and the worker-side `--dist-*` flags from the
    /// process arguments. Exits with a usage message on anything else.
    pub fn from_args() -> Cli {
        Cli::parse(std::env::args().skip(1)).unwrap_or_else(|bad| {
            eprintln!(
                "unknown argument `{bad}` \
                 (expected --smoke/--quick/--full/--jobs N/--trace DIR/--journal PATH/\
                 --workers N/--spool DIR)"
            );
            std::process::exit(2);
        })
    }

    fn parse(args: impl Iterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli {
            scale: Scale::Quick,
            jobs: None,
            trace: None,
            journal: None,
            workers: None,
            spool: None,
            dist: None,
        };
        let mut dist_spool: Option<std::path::PathBuf> = None;
        let mut dist_shard: Option<usize> = None;
        let mut dist_gen: Option<u64> = None;
        let mut dist_id: Option<String> = None;
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => cli.scale = Scale::Smoke,
                "--quick" => cli.scale = Scale::Quick,
                "--full" => cli.scale = Scale::Full,
                "--jobs" => {
                    let v = args.next().ok_or_else(|| "--jobs (missing count)".to_owned())?;
                    cli.jobs = Some(v.parse::<usize>().map_err(|_| format!("--jobs {v}"))?);
                }
                "--workers" => {
                    let v = args.next().ok_or_else(|| "--workers (missing count)".to_owned())?;
                    cli.workers = Some(v.parse::<usize>().map_err(|_| format!("--workers {v}"))?);
                }
                "--trace" => {
                    let v = args.next().ok_or_else(|| "--trace (missing dir)".to_owned())?;
                    cli.trace = Some(v.into());
                }
                "--journal" => {
                    let v = args.next().ok_or_else(|| "--journal (missing path)".to_owned())?;
                    cli.journal = Some(v.into());
                }
                "--spool" => {
                    let v = args.next().ok_or_else(|| "--spool (missing dir)".to_owned())?;
                    cli.spool = Some(v.into());
                }
                "--dist-worker" => {
                    let v =
                        args.next().ok_or_else(|| "--dist-worker (missing spool)".to_owned())?;
                    dist_spool = Some(v.into());
                }
                "--dist-shard" => {
                    let v = args.next().ok_or_else(|| "--dist-shard (missing index)".to_owned())?;
                    dist_shard = Some(v.parse::<usize>().map_err(|_| format!("--dist-shard {v}"))?);
                }
                "--dist-gen" => {
                    let v = args.next().ok_or_else(|| "--dist-gen (missing gen)".to_owned())?;
                    dist_gen = Some(v.parse::<u64>().map_err(|_| format!("--dist-gen {v}"))?);
                }
                "--dist-id" => {
                    let v = args.next().ok_or_else(|| "--dist-id (missing id)".to_owned())?;
                    dist_id = Some(v);
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        cli.jobs = Some(v.parse::<usize>().map_err(|_| format!("--jobs={v}"))?);
                    } else if let Some(v) = other.strip_prefix("--workers=") {
                        cli.workers =
                            Some(v.parse::<usize>().map_err(|_| format!("--workers={v}"))?);
                    } else if let Some(v) = other.strip_prefix("--trace=") {
                        cli.trace = Some(v.into());
                    } else if let Some(v) = other.strip_prefix("--journal=") {
                        cli.journal = Some(v.into());
                    } else if let Some(v) = other.strip_prefix("--spool=") {
                        cli.spool = Some(v.into());
                    } else {
                        return Err(a);
                    }
                }
            }
        }
        if cli.jobs == Some(0) {
            return Err("--jobs 0".to_owned());
        }
        if cli.workers == Some(0) {
            return Err("--workers 0".to_owned());
        }
        let dist_any =
            dist_spool.is_some() || dist_shard.is_some() || dist_gen.is_some() || dist_id.is_some();
        if dist_any {
            match (dist_spool, dist_shard, dist_gen, dist_id) {
                (Some(spool), Some(shard), Some(gen), Some(id)) => {
                    cli.dist = Some(DistWorkerCli { spool, shard, gen, id });
                }
                _ => {
                    return Err(
                        "--dist-worker/--dist-shard/--dist-gen/--dist-id (all four required)"
                            .to_owned(),
                    )
                }
            }
        }
        Ok(cli)
    }

    /// The sweep worker count: `--jobs` if given, else
    /// [`runner::default_jobs`].
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(runner::default_jobs)
    }

    /// The trace output directory: `--trace` if given, else the
    /// `SWEEP_TRACE` environment variable, else `None` (tracing disabled).
    pub fn trace_dir(&self) -> Option<std::path::PathBuf> {
        self.trace.clone().or_else(|| std::env::var_os("SWEEP_TRACE").map(Into::into))
    }

    /// The sweep journal path: `--journal` if given, else the
    /// `SWEEP_JOURNAL` environment variable, else `None` (checkpointing
    /// disabled; the sweep runs ephemerally).
    pub fn journal_path(&self) -> Option<std::path::PathBuf> {
        self.journal.clone().or_else(|| std::env::var_os("SWEEP_JOURNAL").map(Into::into))
    }

    /// The distributed worker-process count: `--workers` if given, else the
    /// `SWEEP_WORKERS` environment variable, else 1 (single-process; the
    /// fabric runs in-process and never touches a spool). Unusable env
    /// values warn and fall back, matching `SWEEP_JOBS` handling.
    pub fn workers(&self) -> usize {
        if let Some(n) = self.workers {
            return n.max(1);
        }
        match std::env::var("SWEEP_WORKERS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!(
                        "warning: ignoring SWEEP_WORKERS={v:?}: expected a positive worker count"
                    );
                    1
                }
            },
            Err(_) => 1,
        }
    }
}

/// Renders an aligned text table: a header row plus data rows.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(ToString::to_string).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats bits/second as Mb/s.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// Formats `100·x/base` as a percentage with `decimals` fraction digits, or
/// `"-"` when the baseline is zero, negative, or non-finite. Starved cells
/// (a subflow killed by wireless loss, a zero-goodput run) must render as a
/// placeholder, not divide by zero.
pub fn pct_of(x: f64, base: f64, decimals: usize) -> String {
    if base > 0.0 && base.is_finite() {
        format!("{:.*}%", decimals, 100.0 * x / base)
    } else {
        "-".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["alg", "energy"],
            &[vec!["lia".into(), "10.0".into()], vec!["dts-phi".into(), "8.123".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("lia    "));
    }

    #[test]
    fn mbps_formats() {
        assert_eq!(mbps(1_500_000.0), "1.50");
    }

    #[test]
    fn pct_of_guards_degenerate_baselines() {
        assert_eq!(pct_of(25.0, 50.0, 0), "50%");
        assert_eq!(pct_of(1.0, 3.0, 1), "33.3%");
        assert_eq!(pct_of(1.0, 0.0, 0), "-");
        assert_eq!(pct_of(1.0, -2.0, 0), "-");
        assert_eq!(pct_of(1.0, f64::INFINITY, 0), "-");
        assert_eq!(pct_of(1.0, f64::NAN, 0), "-");
    }

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| (*s).to_owned()))
    }

    fn cli(scale: Scale, jobs: Option<usize>) -> Cli {
        Cli { scale, jobs, trace: None, journal: None, workers: None, spool: None, dist: None }
    }

    #[test]
    fn cli_parses_scale_and_jobs() {
        assert_eq!(parse(&[]), Ok(cli(Scale::Quick, None)));
        assert_eq!(parse(&["--smoke"]), Ok(cli(Scale::Smoke, None)));
        assert_eq!(parse(&["--full", "--jobs", "4"]), Ok(cli(Scale::Full, Some(4))));
        assert_eq!(parse(&["--jobs=2"]), Ok(cli(Scale::Quick, Some(2))));
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "zero"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err(), "a zero worker count is a usage error");
        assert!(parse(&["--jobs=0"]).is_err(), "the = form must reject zero too");
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn cli_parses_trace_dir() {
        let c = parse(&["--trace", "out/traces"]).unwrap();
        assert_eq!(c.trace, Some(std::path::PathBuf::from("out/traces")));
        let c = parse(&["--trace=t", "--smoke"]).unwrap();
        assert_eq!(c.trace, Some(std::path::PathBuf::from("t")));
        assert_eq!(c.scale, Scale::Smoke);
        assert!(parse(&["--trace"]).is_err());
        // The --trace flag wins over the SWEEP_TRACE env fallback.
        assert_eq!(c.trace_dir(), Some(std::path::PathBuf::from("t")));
        assert_eq!(parse(&[]).unwrap().trace, None);
    }

    #[test]
    fn cli_parses_workers_and_spool() {
        let c = parse(&["--workers", "3", "--spool", "out/spool"]).unwrap();
        assert_eq!(c.workers, Some(3));
        assert_eq!(c.spool, Some(std::path::PathBuf::from("out/spool")));
        assert_eq!(c.workers(), 3, "--workers wins over the SWEEP_WORKERS fallback");
        let c = parse(&["--workers=2", "--spool=s"]).unwrap();
        assert_eq!(c.workers, Some(2));
        assert_eq!(c.spool, Some(std::path::PathBuf::from("s")));
        assert!(parse(&["--workers"]).is_err());
        assert!(parse(&["--workers", "0"]).is_err(), "zero workers is a usage error");
        assert!(parse(&["--workers=0"]).is_err(), "the = form must reject zero too");
        assert_eq!(parse(&[]).unwrap().workers, None);
    }

    #[test]
    fn cli_parses_dist_worker_flags_all_or_nothing() {
        let c = parse(&[
            "--smoke",
            "--dist-worker",
            "sp",
            "--dist-shard",
            "2",
            "--dist-gen",
            "1",
            "--dist-id",
            "w2-g1",
        ])
        .unwrap();
        let d = c.dist.expect("dist worker role parsed");
        assert_eq!(d.spool, std::path::PathBuf::from("sp"));
        assert_eq!(d.shard, 2);
        assert_eq!(d.gen, 1);
        assert_eq!(d.id, "w2-g1");
        // A partial flag set is a usage error, not a silent supervisor run.
        let err = parse(&["--dist-worker", "sp", "--dist-shard", "2"]).unwrap_err();
        assert!(err.contains("all four"), "{err}");
        assert!(parse(&["--dist-shard", "x"]).is_err());
        assert_eq!(parse(&[]).unwrap().dist, None);
    }

    #[test]
    fn cli_parses_journal_path() {
        let c = parse(&["--journal", "out/j.jsonl"]).unwrap();
        assert_eq!(c.journal, Some(std::path::PathBuf::from("out/j.jsonl")));
        // The --journal flag wins over the SWEEP_JOURNAL env fallback.
        assert_eq!(c.journal_path(), Some(std::path::PathBuf::from("out/j.jsonl")));
        let c = parse(&["--journal=j", "--smoke"]).unwrap();
        assert_eq!(c.journal, Some(std::path::PathBuf::from("j")));
        assert!(parse(&["--journal"]).is_err());
        assert_eq!(parse(&[]).unwrap().journal, None);
    }
}
