//! # bench-harness — figure regeneration harnesses
//!
//! One module per figure of the paper's evaluation. Every module exposes
//! `run(scale) -> String` returning the printed table; the `src/bin/fig*`
//! binaries are thin wrappers, and the custom `figures` bench target runs
//! every module at [`Scale::Smoke`] so `cargo bench` regenerates all rows.
//!
//! Scales:
//! * [`Scale::Smoke`] — seconds; CI and `cargo bench`.
//! * [`Scale::Quick`] — minutes; the default for the binaries.
//! * [`Scale::Full`] — closest to the paper's parameters that a laptop-class
//!   machine handles (see EXPERIMENTS.md for the documented scaling).

pub mod figs;

pub use figs::*;

/// Experiment scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity scale.
    Smoke,
    /// Minutes-long default scale.
    Quick,
    /// Paper-faithful scale.
    Full,
}

impl Scale {
    /// Parses `--smoke`/`--quick`/`--full` from the process arguments,
    /// defaulting to `Quick`.
    pub fn from_args() -> Scale {
        let mut scale = Scale::Quick;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--smoke" => scale = Scale::Smoke,
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                other => {
                    eprintln!("unknown argument `{other}` (expected --smoke/--quick/--full)");
                    std::process::exit(2);
                }
            }
        }
        scale
    }
}

/// Renders an aligned text table: a header row plus data rows.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats bits/second as Mb/s.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["alg", "energy"],
            &[vec!["lia".into(), "10.0".into()], vec!["dts-phi".into(), "8.123".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("lia    "));
    }

    #[test]
    fn mbps_formats() {
        assert_eq!(mbps(1_500_000.0), "1.50");
    }
}
