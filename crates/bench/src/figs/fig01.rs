//! Fig. 1 — CPU power consumed by TCP vs MPTCP as the number of subflows
//! grows (i7-3770 testbed, two 100 Mb/s NICs).
//!
//! Paper shape: MPTCP > TCP, and MPTCP power increases with the number of
//! subflows.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use energy_model::{energy_of_flow, WiredCpuModel};
use mptcp_energy::scenarios::CcChoice;
use netsim::{SimDuration, SimTime, Simulator};
use topology::TwoPath;
use transport::{attach_flow, FlowConfig, PathSpec};

fn mean_power(n_subflows: usize, duration_s: f64, single_nic: bool) -> (f64, f64) {
    let mut sim = Simulator::new(42);
    let tp = TwoPath::dual_nic(&mut sim, 100_000_000, SimDuration::from_millis(5));
    let both = tp.both();
    let paths: Vec<PathSpec> = (0..n_subflows)
        .map(|i| if single_nic { both[0].clone() } else { both[i % 2].clone() })
        .collect();
    let cc = if n_subflows == 1 {
        CcChoice::Base(AlgorithmKind::Reno).build(1)
    } else {
        CcChoice::Base(AlgorithmKind::Lia).build(n_subflows)
    };
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).rcv_buf_pkts(4096).sample_every(SimDuration::from_millis(20)),
        cc,
        &paths,
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(duration_s));
    let sender = flow.sender_ref(&sim);
    let mut model = WiredCpuModel::i7_3770();
    let report = energy_of_flow(&mut model, sender.samples());
    (report.mean_power_w, sender.goodput_bps(sim.now()))
}

/// Runs the Fig. 1 harness.
pub fn run(scale: Scale) -> String {
    let duration = match scale {
        Scale::Smoke => 3.0,
        Scale::Quick => 15.0,
        Scale::Full => 60.0,
    };
    let max_subflows = match scale {
        Scale::Smoke => 4,
        Scale::Quick | Scale::Full => 8,
    };
    let mut rows = Vec::new();
    let (p_tcp, g_tcp) = mean_power(1, duration, true);
    rows.push(vec![
        "tcp (1 NIC)".to_owned(),
        "1".to_owned(),
        format!("{p_tcp:.2}"),
        crate::mbps(g_tcp),
    ]);
    for n in 2..=max_subflows {
        let (p, g) = mean_power(n, duration, false);
        rows.push(vec![
            "mptcp (2 NICs)".to_owned(),
            n.to_string(),
            format!("{p:.2}"),
            crate::mbps(g),
        ]);
    }
    table(&["config", "subflows", "mean power (W)", "goodput (Mb/s)"], &rows)
}
