//! Fig. 8 — throughput/power trace of LIA vs modified LIA (DTS) in the
//! Fig. 5(b) scenario.
//!
//! Paper shape: DTS tracks LIA's throughput while drawing less power during
//! the bad-path episodes.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_two_path_bursty, BurstyOptions, CcChoice, FlowResult};

fn downsample(r: &FlowResult, points: usize) -> Vec<(f64, f64, f64)> {
    let n = r.tput_trace.len().min(r.energy.trace.len());
    if n == 0 {
        return Vec::new();
    }
    let stride = (n / points.max(1)).max(1);
    (0..n)
        .step_by(stride)
        .map(|i| (r.tput_trace[i].0, r.tput_trace[i].1, r.energy.trace[i].1))
        .collect()
}

/// Runs the Fig. 8 harness.
pub fn run(scale: Scale) -> String {
    let (transfer, horizon) = match scale {
        Scale::Smoke => (8_000_000, 120.0),
        Scale::Quick => (60_000_000, 600.0),
        Scale::Full => (400_000_000, 1800.0),
    };
    let opts = BurstyOptions {
        duration_s: horizon,
        transfer_bytes: Some(transfer),
        ..BurstyOptions::default()
    };
    let lia = run_two_path_bursty(&CcChoice::Base(AlgorithmKind::Lia), &opts);
    let dts = run_two_path_bursty(&CcChoice::dts(), &opts);
    let points = 12;
    let (la, da) = (downsample(&lia, points), downsample(&dts, points));
    let mut rows = Vec::new();
    for (l, d) in la.iter().zip(&da) {
        rows.push(vec![
            format!("{:.1}", l.0),
            crate::mbps(l.1),
            format!("{:.2}", l.2),
            crate::mbps(d.1),
            format!("{:.2}", d.2),
        ]);
    }
    let mut out =
        table(&["t (s)", "lia tput (Mb/s)", "lia P (W)", "dts tput (Mb/s)", "dts P (W)"], &rows);
    out.push_str(&format!(
        "totals: lia {:.1} J @ {} Mb/s | dts {:.1} J @ {} Mb/s\n",
        lia.energy.joules,
        crate::mbps(lia.goodput_bps),
        dts.energy.joules,
        crate::mbps(dts.goodput_bps),
    ));
    out
}
