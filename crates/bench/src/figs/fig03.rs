//! Fig. 3 — energy and power vs throughput of MPTCP.
//!
//! (a) Wired Ethernet, available bandwidth 200 → 1000 Mb/s, fixed transfer:
//!     total energy *decreases* with throughput while power rises gently
//!     (≈ 15 % end to end, non-linear).
//! (b) WiFi, 10 → 50 Mb/s: power rises sharply (≈ 90 %+, linear).

use crate::{table, Scale};
use congestion::AlgorithmKind;
use energy_model::{energy_of_flow, PhoneModel, WiredCpuModel};
use mptcp_energy::scenarios::CcChoice;
use netsim::{SimDuration, SimTime, Simulator};
use topology::{LinkParams, TwoPath};
use transport::{attach_flow, FlowConfig};

fn ethernet_point(total_bps: u64, bytes: u64) -> (f64, f64, f64) {
    let mut sim = Simulator::new(3);
    // BDP-sized buffers, as on an autotuned testbed: queueing delay is then
    // a constant multiple of base RTT across the bandwidth sweep, so the
    // power curve isolates the throughput term (the paper's Fig. 3a).
    let nic_bps = total_bps / 2;
    let bdp_pkts = ((nic_bps as f64 * 0.008) / (1500.0 * 8.0)).ceil() as usize;
    let params = LinkParams::new(nic_bps, SimDuration::from_millis(2)).queue(bdp_pkts.max(16));
    let tp = TwoPath::symmetric(&mut sim, params);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .transfer_bytes(bytes)
            .rcv_buf_pkts(2048)
            .sample_every(SimDuration::from_millis(20)),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(600.0));
    let sender = flow.sender_ref(&sim);
    let mut model = WiredCpuModel::i7_3770();
    let report = energy_of_flow(&mut model, sender.samples());
    (report.joules, report.mean_power_w, sender.goodput_bps(sim.now()))
}

fn wifi_point(bps: u64, bytes: u64) -> (f64, f64, f64) {
    let mut sim = Simulator::new(3);
    let params = LinkParams::new(bps, SimDuration::from_millis(10)).queue(100);
    let tp = TwoPath::symmetric(&mut sim, params);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(bytes).sample_every(SimDuration::from_millis(20)),
        CcChoice::Base(AlgorithmKind::Reno).build(1),
        &tp.first_only(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(600.0));
    let sender = flow.sender_ref(&sim);
    let mut model = PhoneModel::nexus5();
    let report = energy_of_flow(&mut model, sender.samples());
    (report.joules, report.mean_power_w, sender.goodput_bps(sim.now()))
}

/// Runs the Fig. 3 harness.
pub fn run(scale: Scale) -> String {
    // Paper: 10 GB wired / 500 MB WiFi. Scaled per EXPERIMENTS.md.
    let (wired_bytes, wifi_bytes) = match scale {
        Scale::Smoke => (8_000_000, 2_000_000),
        Scale::Quick => (100_000_000, 20_000_000),
        Scale::Full => (1_000_000_000, 100_000_000),
    };
    let mut rows = Vec::new();
    for mbps in [200u64, 400, 600, 800, 1000] {
        let (j, p, g) = ethernet_point(mbps * 1_000_000, wired_bytes);
        rows.push(vec![
            "ethernet".to_owned(),
            mbps.to_string(),
            format!("{j:.1}"),
            format!("{p:.2}"),
            crate::mbps(g),
        ]);
    }
    for mbps in [10u64, 20, 30, 40, 50] {
        let (j, p, g) = wifi_point(mbps * 1_000_000, wifi_bytes);
        rows.push(vec![
            "wifi".to_owned(),
            mbps.to_string(),
            format!("{j:.1}"),
            format!("{p:.3}"),
            crate::mbps(g),
        ]);
    }
    table(&["medium", "bandwidth (Mb/s)", "energy (J)", "mean power (W)", "goodput (Mb/s)"], &rows)
}
