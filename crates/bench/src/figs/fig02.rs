//! Fig. 2 — Nexus 5 power during data transfers: TCP over WiFi, TCP over
//! LTE, and MPTCP over both radios.
//!
//! Paper shape: MPTCP largely increases the phone's power consumption.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use energy_model::{energy_of_flow, PhoneModel};
use mptcp_energy::scenarios::CcChoice;
use netsim::{SimDuration, SimTime, Simulator};
use topology::TwoPath;
use transport::{attach_flow, FlowConfig};

/// Which radios the connection uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Radios {
    Wifi,
    Lte,
    Both,
}

fn run_phone(radios: Radios, duration_s: f64) -> (f64, f64) {
    let mut sim = Simulator::new(7);
    let tp = TwoPath::wireless(&mut sim);
    let (specs, cc) = match radios {
        Radios::Wifi => (tp.first_only(), CcChoice::Base(AlgorithmKind::Reno)),
        Radios::Lte => (tp.second_only(), CcChoice::Base(AlgorithmKind::Reno)),
        Radios::Both => (tp.both(), CcChoice::Base(AlgorithmKind::Lia)),
    };
    let n = specs.len();
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).rcv_buf_bytes(256 * 1024).sample_every(SimDuration::from_millis(50)),
        cc.build(n),
        &specs,
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(duration_s));
    let sender = flow.sender_ref(&sim);
    // The phone model maps sample slot 0 → WiFi and slot 1 → LTE; pad the
    // single-LTE run so its traffic lands on the LTE slot.
    let mut samples = sender.samples().to_vec();
    if radios == Radios::Lte {
        for s in &mut samples {
            s.subflows.insert(
                0,
                transport::SubflowSample {
                    throughput_bps: 0.0,
                    srtt_s: 0.0,
                    base_rtt_s: 0.0,
                    cwnd_pkts: 0.0,
                    active: false,
                },
            );
        }
    }
    let mut model = PhoneModel::nexus5();
    let report = energy_of_flow(&mut model, &samples);
    (report.mean_power_w, sender.goodput_bps(sim.now()))
}

/// Runs the Fig. 2 harness.
pub fn run(scale: Scale) -> String {
    let duration = match scale {
        Scale::Smoke => 5.0,
        Scale::Quick => 30.0,
        Scale::Full => 120.0,
    };
    let (p_wifi, g_wifi) = run_phone(Radios::Wifi, duration);
    let (p_lte, g_lte) = run_phone(Radios::Lte, duration);
    let (p_mptcp, g_mptcp) = run_phone(Radios::Both, duration);
    let rows = vec![
        vec!["tcp/wifi".to_owned(), format!("{p_wifi:.3}"), crate::mbps(g_wifi)],
        vec!["tcp/lte".to_owned(), format!("{p_lte:.3}"), crate::mbps(g_lte)],
        vec!["mptcp/wifi+lte".to_owned(), format!("{p_mptcp:.3}"), crate::mbps(g_mptcp)],
    ];
    table(&["config", "mean power (W)", "goodput (Mb/s)"], &rows)
}
