//! Fig. 17 — heterogeneous wireless: WiFi (10 Mb/s, 40 ms) + 4G (20 Mb/s,
//! 100 ms) with bursty cross traffic, phone radio energy model.
//!
//! Paper shape: DTS saves up to ≈ 30 % energy versus LIA, with the
//! compensative parameter contributing; DTS trades some throughput for that
//! saving.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_wireless, CcChoice, WirelessOptions};

/// Runs the Fig. 17 harness.
pub fn run(scale: Scale) -> String {
    let (duration, seeds): (f64, &[u64]) = match scale {
        Scale::Smoke => (20.0, &[1]),
        Scale::Quick => (100.0, &[1, 2]),
        Scale::Full => (200.0, &[1, 2, 3, 4]),
    };
    // The radio scenario wants a strong price weight: the LTE path's delay
    // excess is large (≈ 100 ms over a 5 ms target), and throttling it is
    // where the radio energy lives (κ per Equation (7) is per-deployment).
    let wireless_phi = mptcp_energy::DtsPhiConfig { kappa: 2e-3, ..Default::default() };
    let choices =
        [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts(), CcChoice::DtsPhi(wireless_phi)];
    let mut rows = Vec::new();
    for &seed in seeds {
        let mut lia_energy = None;
        for cc in choices {
            let opts = WirelessOptions { seed, duration_s: duration, ..WirelessOptions::default() };
            let r = run_wireless(&cc, &opts);
            if lia_energy.is_none() {
                lia_energy = Some(r.energy.joules);
            }
            let saving = 100.0 * (lia_energy.unwrap() - r.energy.joules) / lia_energy.unwrap();
            rows.push(vec![
                seed.to_string(),
                r.label.clone(),
                format!("{:.1}", r.energy.joules),
                format!("{saving:.1}%"),
                crate::mbps(r.goodput_bps),
            ]);
        }
    }
    table(&["seed", "algorithm", "energy (J)", "saving vs lia", "goodput (Mb/s)"], &rows)
}
