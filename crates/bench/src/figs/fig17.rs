//! Fig. 17 — heterogeneous wireless: WiFi (10 Mb/s, 40 ms) + 4G (20 Mb/s,
//! 100 ms) with bursty cross traffic, phone radio energy model.
//!
//! Paper shape: DTS saves up to ≈ 30 % energy versus LIA, with the
//! compensative parameter contributing; DTS trades some throughput for that
//! saving.

use crate::runner::{run_sweep, SweepCell};
use crate::{pct_of, table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_wireless, CcChoice, WirelessOptions};

/// Runs the Fig. 17 harness.
pub fn run(scale: Scale) -> String {
    let (duration, seeds): (f64, &[u64]) = match scale {
        Scale::Smoke => (20.0, &[1]),
        Scale::Quick => (100.0, &[1, 2]),
        Scale::Full => (200.0, &[1, 2, 3, 4]),
    };
    // The radio scenario wants a strong price weight: the LTE path's delay
    // excess is large (≈ 100 ms over a 5 ms target), and throttling it is
    // where the radio energy lives (κ per Equation (7) is per-deployment).
    let wireless_phi = mptcp_energy::DtsPhiConfig { kappa: 2e-3, ..Default::default() };
    let choices =
        [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts(), CcChoice::DtsPhi(wireless_phi)];
    let cells: Vec<SweepCell<_>> = seeds
        .iter()
        .flat_map(|&seed| {
            choices.into_iter().map(move |cc| {
                SweepCell::new(format!("{}/{}", seed, cc.label()), seed, move || {
                    let opts = WirelessOptions {
                        seed,
                        duration_s: duration,
                        ..WirelessOptions::default()
                    };
                    run_wireless(&cc, &opts)
                })
            })
        })
        .collect();
    let mut rows = Vec::new();
    for group in run_sweep(cells).chunks(choices.len()) {
        // Each seed's LIA row is the savings baseline; a starved LIA cell
        // (wireless loss can kill a subflow) renders "-" instead of NaN.
        let lia_energy = group.first().map_or(0.0, |r| r.output.energy.joules);
        for r in group {
            rows.push(vec![
                r.seed.to_string(),
                r.output.label.clone(),
                format!("{:.1}", r.output.energy.joules),
                pct_of(lia_energy - r.output.energy.joules, lia_energy, 1),
                crate::mbps(r.output.goodput_bps),
            ]);
        }
    }
    table(&["seed", "algorithm", "energy (J)", "saving vs lia", "goodput (Mb/s)"], &rows)
}
