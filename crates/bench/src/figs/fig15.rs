//! Fig. 15 — energy saving from the compensative parameter φ (DTS-Φ) over
//! LIA in FatTree and VL2 with many subflows per connection.
//!
//! Paper shape: the extended algorithm saves up to ≈ 20 % energy in the
//! hierarchical fabrics.

use crate::runner::{run_sweep, SweepCell};
use crate::{pct_of, table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_datacenter, CcChoice, DcKind, DcOptions};

pub(crate) fn fabric_set(scale: Scale) -> (Vec<DcKind>, usize, f64) {
    match scale {
        Scale::Smoke => (vec![DcKind::FatTree { k: 4 }, DcKind::Vl2 { scale: 8 }], 2, 1.0),
        Scale::Quick => (vec![DcKind::FatTree { k: 4 }, DcKind::Vl2 { scale: 4 }], 4, 5.0),
        Scale::Full => (vec![DcKind::FatTree { k: 8 }, DcKind::Vl2 { scale: 1 }], 8, 20.0),
    }
}

/// Runs the Fig. 15 harness.
pub fn run(scale: Scale) -> String {
    let (fabrics, subflows, duration) = fabric_set(scale);
    // A heavier price weight suits datacenter windows (κ per Equation (7) is
    // a per-user weight; DC BDPs are tiny, so the w² drain needs more κ).
    let dc_phi =
        mptcp_energy::DtsPhiConfig { kappa: 1e-3, queue_target_s: 1e-3, ..Default::default() };
    let choices = [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts(), CcChoice::DtsPhi(dc_phi)];
    let opts = DcOptions { n_subflows: subflows, duration_s: duration, ..DcOptions::default() };
    // One cell per (fabric, algorithm); rows group per fabric, with the LIA
    // row of each fabric as the savings baseline.
    let cells: Vec<SweepCell<_>> = fabrics
        .iter()
        .flat_map(|&fabric| {
            choices.into_iter().map(move |cc| {
                SweepCell::new(format!("{}/{}", fabric.name(), cc.label()), opts.seed, move || {
                    (fabric, run_datacenter(fabric, &cc, &opts))
                })
            })
        })
        .collect();
    let mut rows = Vec::new();
    for group in run_sweep(cells).chunks(choices.len()) {
        let lia_energy = group.first().map_or(0.0, |r| r.output.1.total_energy_j);
        for r in group {
            let (fabric, r) = &r.output;
            rows.push(vec![
                fabric.name().to_owned(),
                r.label.clone(),
                format!("{:.0}", r.total_energy_j),
                pct_of(lia_energy - r.total_energy_j, lia_energy, 1),
                format!("{:.1}", r.joules_per_gbit),
            ]);
        }
    }
    table(&["fabric", "algorithm", "energy (J)", "saving vs lia", "J/Gbit"], &rows)
}
