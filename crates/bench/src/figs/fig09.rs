//! Fig. 9 — energy of DTS vs LIA in the Fig. 5(b) scenario across repeated
//! runs.
//!
//! Paper shape: DTS reduces energy by up to 20 % versus LIA without
//! degrading throughput.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_two_path_bursty, BurstyOptions, CcChoice};

/// Runs the Fig. 9 harness.
pub fn run(scale: Scale) -> String {
    // Energy to move a fixed amount of data (the paper's Equation (2)).
    let (transfer, horizon, seeds): (u64, f64, &[u64]) = match scale {
        Scale::Smoke => (8_000_000, 120.0, &[1]),
        Scale::Quick => (60_000_000, 600.0, &[1, 2, 3]),
        Scale::Full => (400_000_000, 1800.0, &[1, 2, 3, 4, 5, 6, 7, 8]),
    };
    let mut rows = Vec::new();
    let mut savings = Vec::new();
    for &seed in seeds {
        let opts = BurstyOptions {
            seed,
            duration_s: horizon,
            transfer_bytes: Some(transfer),
            ..BurstyOptions::default()
        };
        let lia = run_two_path_bursty(&CcChoice::Base(AlgorithmKind::Lia), &opts);
        let dts = run_two_path_bursty(&CcChoice::dts(), &opts);
        let saving = 100.0 * (lia.energy.joules - dts.energy.joules) / lia.energy.joules;
        savings.push(saving);
        rows.push(vec![
            seed.to_string(),
            format!("{:.1}", lia.energy.joules),
            format!("{:.1}", dts.energy.joules),
            format!("{saving:.1}%"),
            crate::mbps(lia.goodput_bps),
            crate::mbps(dts.goodput_bps),
        ]);
    }
    let mut out = table(
        &["seed", "lia (J)", "dts (J)", "saving", "lia tput (Mb/s)", "dts tput (Mb/s)"],
        &rows,
    );
    out.push_str(&format!(
        "mean saving: {:.1}% | max saving: {:.1}%\n",
        mptcp_energy::mean(&savings),
        savings.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    ));
    out
}
