//! Fig. 4 — CPU power of MPTCP under different path delays at matched
//! throughput.
//!
//! The paper's knob, reproduced exactly: path delay is raised by running
//! more subflows per NIC (`num_subflows` in the kernel's fullmesh path
//! manager) — aggregate throughput stays NIC-limited and unchanged, but the
//! shared queue inflates every subflow's RTT. Paper shape: the high-delay
//! configuration draws more CPU power.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use energy_model::{energy_of_flow, WiredCpuModel};
use mptcp_energy::scenarios::CcChoice;
use netsim::{SimDuration, SimTime, Simulator};
use topology::TwoPath;
use transport::{attach_flow, FlowConfig, PathSpec};

fn point(subflows_per_nic: usize, duration_s: f64) -> (f64, f64, f64) {
    let mut sim = Simulator::new(4);
    let tp = TwoPath::dual_nic(&mut sim, 50_000_000, SimDuration::from_millis(10));
    let both = tp.both();
    let paths: Vec<PathSpec> = (0..2 * subflows_per_nic).map(|i| both[i % 2].clone()).collect();
    let n = paths.len();
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).rcv_buf_pkts(4096).sample_every(SimDuration::from_millis(20)),
        CcChoice::Base(AlgorithmKind::Lia).build(n),
        &paths,
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(duration_s));
    let sender = flow.sender_ref(&sim);
    // Skip the slow-start warmup when averaging power.
    let samples = sender.samples();
    let steady = &samples[samples.len() / 3..];
    let mut model = WiredCpuModel::i7_3770();
    let report = energy_of_flow(&mut model, steady);
    let srtt_ms = sender.cc_states()[0].srtt * 1000.0;
    (report.mean_power_w, sender.goodput_bps(sim.now()), srtt_ms)
}

/// Runs the Fig. 4 harness.
pub fn run(scale: Scale) -> String {
    let duration = match scale {
        Scale::Smoke => 6.0,
        Scale::Quick => 30.0,
        Scale::Full => 90.0,
    };
    let mut rows = Vec::new();
    for (label, per_nic) in [("1 subflow/NIC (low RTT)", 1usize), ("2 subflows/NIC (high RTT)", 2)]
    {
        let (p, g, srtt) = point(per_nic, duration);
        rows.push(vec![label.to_owned(), format!("{srtt:.1}"), format!("{p:.2}"), crate::mbps(g)]);
    }
    table(&["config", "srtt (ms)", "mean power (W)", "goodput (Mb/s)"], &rows)
}
