//! Figs. 12–14 — energy overhead of LIA as the number of subflows grows, in
//! BCube, FatTree and VL2.
//!
//! Paper shape: more subflows greatly reduce energy overhead in BCube
//! (server-centric, each subflow leaves through its own NIC, so host
//! capacity multiplies), but fail to save energy in FatTree and VL2 (all
//! subflows share the host's single NIC while each adds CPU overhead).
//!
//! "Energy overhead" is reported as joules per gigabit delivered.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_datacenter, CcChoice, DcKind, DcOptions};

/// Runs the Figs. 12–14 harness.
pub fn run(scale: Scale) -> String {
    let (fabrics, subflows, duration): (Vec<DcKind>, &[usize], f64) = match scale {
        Scale::Smoke => (
            vec![DcKind::BCube { n: 4, k: 1 }, DcKind::FatTree { k: 4 }, DcKind::Vl2 { scale: 8 }],
            &[1, 2],
            1.0,
        ),
        Scale::Quick => (
            vec![DcKind::BCube { n: 4, k: 2 }, DcKind::FatTree { k: 4 }, DcKind::Vl2 { scale: 4 }],
            &[1, 2, 4],
            5.0,
        ),
        Scale::Full => (
            vec![DcKind::BCube { n: 4, k: 3 }, DcKind::FatTree { k: 8 }, DcKind::Vl2 { scale: 1 }],
            &[1, 2, 4, 8],
            20.0,
        ),
    };
    let mut rows = Vec::new();
    for fabric in &fabrics {
        for &n in subflows {
            let opts = DcOptions { n_subflows: n, duration_s: duration, ..DcOptions::default() };
            let r = run_datacenter(*fabric, &CcChoice::Base(AlgorithmKind::Lia), &opts);
            rows.push(vec![
                fabric.name().to_owned(),
                n.to_string(),
                format!("{:.1}", r.joules_per_gbit),
                crate::mbps(r.aggregate_goodput_bps),
                format!("{:.0}", r.total_energy_j),
            ]);
        }
    }
    table(&["fabric", "subflows", "J/Gbit", "agg goodput (Mb/s)", "energy (J)"], &rows)
}
