//! Fig. 6 — box-whisker energy of the four TCP-friendly algorithms (LIA,
//! OLIA, Balia, ecMTCP) in the Fig. 5(a) shared-bottleneck scenario with
//! N MPTCP users (16 MB each) and 2N TCP competitors.
//!
//! Paper shape: OLIA consumes the least average energy, increasingly so at
//! large N — Pareto-optimality converts into shorter transfers.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_shared_bottleneck, CcChoice, SharedOptions};
use mptcp_energy::FiveNumber;

/// Runs the Fig. 6 harness.
pub fn run(scale: Scale) -> String {
    let (n_values, transfer): (&[usize], u64) = match scale {
        Scale::Smoke => (&[5], 1024 * 1024),
        Scale::Quick => (&[10, 20], 8 * 1024 * 1024),
        Scale::Full => (&[10, 20, 50, 100], 16 * 1024 * 1024),
    };
    let mut rows = Vec::new();
    for &n in n_values {
        for kind in AlgorithmKind::PAPER_FOUR {
            let opts =
                SharedOptions { n_users: n, transfer_bytes: transfer, ..SharedOptions::default() };
            let energies = run_shared_bottleneck(&CcChoice::Base(kind), &opts);
            let summary = FiveNumber::of(&energies);
            rows.push(vec![
                n.to_string(),
                kind.to_string(),
                format!("{:.1}", mptcp_energy::mean(&energies)),
                summary.row(),
            ]);
        }
    }
    table(&["N", "algorithm", "mean energy (J)", "box-whisker (J)"], &rows)
}
