//! Fig. 10 — the EC2 VPC experiment: TCP, DCTCP, LIA and DTS moving bulk
//! data between multihomed instances (4 × 256 Mb/s ENIs each).
//!
//! Paper shape: the multipath algorithms save up to ≈ 70 % of the aggregate
//! energy of the single-path baselines (they finish ≈ 4× sooner on 4 ENIs),
//! and DTS performs like LIA in this benign datacenter network.

use crate::runner::{run_sweep, SweepCell};
use crate::{pct_of, table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_ec2, CcChoice, Ec2Options};

/// Runs the Fig. 10 harness.
pub fn run(scale: Scale) -> String {
    let opts = match scale {
        Scale::Smoke => Ec2Options {
            n_hosts: 4,
            transfer_bytes: 8 * 1024 * 1024,
            horizon_s: 120.0,
            ..Ec2Options::default()
        },
        Scale::Quick => Ec2Options {
            n_hosts: 10,
            transfer_bytes: 64 * 1024 * 1024,
            horizon_s: 600.0,
            ..Ec2Options::default()
        },
        Scale::Full => Ec2Options {
            n_hosts: 40,
            transfer_bytes: 512 * 1024 * 1024,
            horizon_s: 3600.0,
            ..Ec2Options::default()
        },
    };
    let choices = [
        CcChoice::Base(AlgorithmKind::Reno),
        CcChoice::Base(AlgorithmKind::Dctcp),
        CcChoice::Base(AlgorithmKind::Lia),
        CcChoice::dts(),
    ];
    let cells: Vec<SweepCell<_>> = choices
        .into_iter()
        .map(|cc| SweepCell::new(cc.label(), opts.seed, move || run_ec2(&cc, &opts)))
        .collect();
    let results = run_sweep(cells);
    // The single-path TCP row is the savings baseline (first cell).
    let tcp_energy = results.first().map_or(0.0, |r| r.output.total_energy_j);
    let mut rows = Vec::new();
    for r in &results {
        let r = &r.output;
        rows.push(vec![
            r.label.clone(),
            format!("{:.0}", r.total_energy_j),
            pct_of(tcp_energy - r.total_energy_j, tcp_energy, 0),
            crate::mbps(r.aggregate_goodput_bps),
            r.mean_finish_s.map_or("-".to_owned(), |t| format!("{t:.1}")),
            format!("{:.0}%", 100.0 * r.completion_rate),
        ]);
    }
    table(
        &["algorithm", "energy (J)", "vs tcp", "agg goodput (Mb/s)", "mean fct (s)", "done"],
        &rows,
    )
}
