//! Fig. 7 — traffic-shifting comparison of the existing algorithms in the
//! Fig. 5(b) scenario (two paths whose quality flips under Pareto bursts).
//!
//! Paper shape: LIA outperforms the other existing algorithms at shifting
//! traffic in this harsh scenario.

use crate::{table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_two_path_bursty, BurstyOptions, CcChoice};

/// Runs the Fig. 7 harness.
pub fn run(scale: Scale) -> String {
    // Energy is measured to *completion* of a fixed transfer, the paper's
    // Equation-(2) metric E = (M/mean-throughput)·ΣP.
    let (transfer, horizon) = match scale {
        Scale::Smoke => (8_000_000, 120.0),
        Scale::Quick => (60_000_000, 600.0),
        Scale::Full => (400_000_000, 1800.0),
    };
    let algorithms = [
        AlgorithmKind::Ewtcp,
        AlgorithmKind::Coupled,
        AlgorithmKind::Lia,
        AlgorithmKind::Olia,
        AlgorithmKind::Balia,
        AlgorithmKind::EcMtcp,
        AlgorithmKind::WVegas,
    ];
    let mut rows = Vec::new();
    for kind in algorithms {
        let opts = BurstyOptions {
            duration_s: horizon,
            transfer_bytes: Some(transfer),
            ..BurstyOptions::default()
        };
        let r = run_two_path_bursty(&CcChoice::Base(kind), &opts);
        rows.push(vec![
            r.label.clone(),
            crate::mbps(r.goodput_bps),
            format!("{:.1}", r.energy.joules),
            r.finish_s.map_or("-".into(), |t| format!("{t:.1}")),
            format!("{:.2}", r.energy.mean_power_w),
            r.rexmits.to_string(),
        ]);
    }
    table(
        &["algorithm", "goodput (Mb/s)", "energy (J)", "fct (s)", "mean power (W)", "rexmits"],
        &rows,
    )
}
