//! Figure harnesses, one module per paper figure.

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig12_14;
pub mod fig15;
pub mod fig16;
pub mod fig17;

use crate::fabric::{FabricCell, Fingerprint};
use crate::Scale;

/// A named figure harness entry point.
type FigRunner = (&'static str, fn(Scale) -> String);

/// Every figure harness, in report order.
const FIGS: &[FigRunner] = &[
    ("Fig 1", fig01::run),
    ("Fig 2", fig02::run),
    ("Fig 3", fig03::run),
    ("Fig 4", fig04::run),
    ("Fig 6", fig06::run),
    ("Fig 7", fig07::run),
    ("Fig 8", fig08::run),
    ("Fig 9", fig09::run),
    ("Fig 10", fig10::run),
    ("Fig 12-14", fig12_14::run),
    ("Fig 15", fig15::run),
    ("Fig 16", fig16::run),
    ("Fig 17", fig17::run),
];

/// Runs every figure harness at the given scale, returning the concatenated
/// report (the `figures` bench target uses `Scale::Smoke`).
pub fn run_all(scale: Scale) -> String {
    let mut out = String::new();
    for &(name, f) in FIGS {
        out.push_str(&format!("==== {name} ====\n"));
        out.push_str(&f(scale));
        out.push('\n');
    }
    out
}

/// The same harnesses as independent fabric cells (label = figure name,
/// output = the rendered section), for the crash-safe `figures_all` sweep:
/// each completed figure is journaled, a killed run resumes without
/// regenerating finished figures, and a panicking figure is quarantined
/// instead of sinking the whole report. The scale is part of each cell's
/// config fingerprint, so a journal written at one scale refuses to resume
/// a sweep at another.
pub fn fig_cells(scale: Scale) -> Vec<FabricCell<String>> {
    FIGS.iter()
        .map(|&(name, f)| {
            FabricCell::new(name, 0, move || f(scale))
                .config(Fingerprint::new().str("figs").str(scale.name()).str(name))
        })
        .collect()
}
