//! Fig. 16 — aggregated throughput of DTS(-Φ) vs LIA in FatTree and VL2.
//!
//! Paper shape: the new algorithm gets as good utilization as LIA in both
//! fabrics (the energy saving of Fig. 15 is not bought with throughput).

use crate::{table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_datacenter, CcChoice, DcOptions};

/// Runs the Fig. 16 harness.
pub fn run(scale: Scale) -> String {
    let (fabrics, subflows, duration) = super::fig15::fabric_set(scale);
    let choices = [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts(), CcChoice::dts_phi()];
    let mut rows = Vec::new();
    for fabric in &fabrics {
        let mut lia_tput = None;
        for cc in choices {
            let opts =
                DcOptions { n_subflows: subflows, duration_s: duration, ..DcOptions::default() };
            let r = run_datacenter(*fabric, &cc, &opts);
            if lia_tput.is_none() {
                lia_tput = Some(r.aggregate_goodput_bps);
            }
            rows.push(vec![
                fabric.name().to_owned(),
                r.label.clone(),
                crate::mbps(r.aggregate_goodput_bps),
                format!("{:.1}%", 100.0 * r.aggregate_goodput_bps / lia_tput.unwrap()),
            ]);
        }
    }
    table(&["fabric", "algorithm", "agg goodput (Mb/s)", "vs lia"], &rows)
}
