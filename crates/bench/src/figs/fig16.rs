//! Fig. 16 — aggregated throughput of DTS(-Φ) vs LIA in FatTree and VL2.
//!
//! Paper shape: the new algorithm gets as good utilization as LIA in both
//! fabrics (the energy saving of Fig. 15 is not bought with throughput).

use crate::runner::{run_sweep, SweepCell};
use crate::{pct_of, table, Scale};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_datacenter, CcChoice, DcOptions};

/// Runs the Fig. 16 harness.
pub fn run(scale: Scale) -> String {
    let (fabrics, subflows, duration) = super::fig15::fabric_set(scale);
    let choices = [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts(), CcChoice::dts_phi()];
    let opts = DcOptions { n_subflows: subflows, duration_s: duration, ..DcOptions::default() };
    let cells: Vec<SweepCell<_>> = fabrics
        .iter()
        .flat_map(|&fabric| {
            choices.into_iter().map(move |cc| {
                SweepCell::new(format!("{}/{}", fabric.name(), cc.label()), opts.seed, move || {
                    (fabric, run_datacenter(fabric, &cc, &opts))
                })
            })
        })
        .collect();
    let mut rows = Vec::new();
    for group in run_sweep(cells).chunks(choices.len()) {
        // Each fabric's LIA row is the utilization baseline; a starved LIA
        // cell renders "-" rather than dividing by zero.
        let lia_tput = group.first().map_or(0.0, |r| r.output.1.aggregate_goodput_bps);
        for r in group {
            let (fabric, r) = &r.output;
            rows.push(vec![
                fabric.name().to_owned(),
                r.label.clone(),
                crate::mbps(r.aggregate_goodput_bps),
                pct_of(r.aggregate_goodput_bps, lia_tput, 1),
            ]);
        }
    }
    table(&["fabric", "algorithm", "agg goodput (Mb/s)", "vs lia"], &rows)
}
