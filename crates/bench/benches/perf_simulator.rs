//! Criterion benches for the simulator substrate: event-loop throughput and
//! end-to-end transport cost.

use congestion::AlgorithmKind;
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::prelude::*;
use std::time::Duration;
use transport::{attach_flow, FlowConfig, PathSpec};

fn bench_event_loop(c: &mut Criterion) {
    // Fast engine vs the pre-overhaul reference engine, as separate benches:
    // criterion's history then tracks both the absolute event-loop cost and
    // (by ratio) the overhaul's speedup.
    for (label, engine) in [
        ("event_loop_10k_raw_packets", EngineConfig::default()),
        ("event_loop_10k_raw_packets_reference_engine", EngineConfig::reference()),
    ] {
        c.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = Simulator::with_engine(1, engine);
                let l = sim.add_link(
                    LinkConfig::new(1_000_000_000, SimDuration::from_micros(10))
                        .queue_limit(20_000),
                );
                let sink = sim.add_agent(Box::new(workload::Sink::new()));
                let route = Route::new(vec![l], sink);
                for _ in 0..10_000 {
                    sim.world_mut().send_packet(sink, route.clone(), 1500, Payload::Raw);
                }
                sim.run_to_completion();
                std::hint::black_box(sim.agent::<workload::Sink>(sink).pkts)
            });
        });
    }
}

fn bench_bulk_transfer(c: &mut Criterion) {
    c.bench_function("transport_1mb_transfer_reno", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let fwd = sim.add_link(LinkConfig::new(100_000_000, SimDuration::from_millis(1)));
            let rev = sim.add_link(LinkConfig::new(100_000_000, SimDuration::from_millis(1)));
            let flow = attach_flow(
                &mut sim,
                FlowConfig::new(0).transfer_bytes(1_000_000),
                AlgorithmKind::Reno.build(1),
                &[PathSpec::new(vec![fwd], vec![rev])],
                SimDuration::ZERO,
            );
            sim.run_until(SimTime::from_secs_f64(10.0));
            assert!(flow.is_finished(&sim));
            std::hint::black_box(flow.goodput_bps(&sim))
        });
    });
}

fn bench_mptcp_two_paths(c: &mut Criterion) {
    for (label, engine) in [
        ("transport_1mb_transfer_lia_2paths", EngineConfig::default()),
        ("transport_1mb_transfer_lia_2paths_reference_engine", EngineConfig::reference()),
    ] {
        c.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = Simulator::with_engine(1, engine);
                let mk = |sim: &mut Simulator| {
                    let f = sim.add_link(LinkConfig::new(50_000_000, SimDuration::from_millis(2)));
                    let r = sim.add_link(LinkConfig::new(50_000_000, SimDuration::from_millis(2)));
                    PathSpec::new(vec![f], vec![r])
                };
                let p1 = mk(&mut sim);
                let p2 = mk(&mut sim);
                let flow = attach_flow(
                    &mut sim,
                    FlowConfig::new(0).transfer_bytes(1_000_000),
                    AlgorithmKind::Lia.build(2),
                    &[p1, p2],
                    SimDuration::ZERO,
                );
                sim.run_until(SimTime::from_secs_f64(10.0));
                assert!(flow.is_finished(&sim));
                std::hint::black_box(flow.goodput_bps(&sim))
            });
        });
    }
}

/// Cost of the fault-injection layer on the hot path: the same two-path
/// transfer, now with i.i.d. loss rolled per enqueue and a mid-run blackout
/// driving dead-subflow failover and revival.
fn bench_faulted_transfer(c: &mut Criterion) {
    c.bench_function("transport_1mb_transfer_lia_2paths_faulted", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let mk = |sim: &mut Simulator| {
                let f = sim.add_link(LinkConfig::new(50_000_000, SimDuration::from_millis(2)));
                let r = sim.add_link(LinkConfig::new(50_000_000, SimDuration::from_millis(2)));
                PathSpec::new(vec![f], vec![r])
            };
            let p1 = mk(&mut sim);
            let p2 = mk(&mut sim);
            FaultScript::new()
                .at(
                    SimTime::from_secs_f64(0.0),
                    FaultAction::SetLoss { link: p1.fwd[0], model: LossModel::iid(0.01) },
                )
                .blackout(p2.fwd[0], SimTime::from_secs_f64(0.1), SimTime::from_secs_f64(0.4))
                .install(&mut sim);
            let flow = attach_flow(
                &mut sim,
                FlowConfig::new(0).transfer_bytes(1_000_000).dead_after_backoffs(Some(2)),
                AlgorithmKind::Lia.build(2),
                &[p1, p2],
                SimDuration::ZERO,
            );
            sim.run_until(SimTime::from_secs_f64(20.0));
            assert!(flow.is_finished(&sim));
            std::hint::black_box(flow.goodput_bps(&sim))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_event_loop, bench_bulk_transfer, bench_mptcp_two_paths, bench_faulted_transfer
}
criterion_main!(benches);
