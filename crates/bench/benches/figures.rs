//! Custom bench target: regenerates every paper figure at smoke scale so
//! `cargo bench --workspace` reproduces all table rows.

fn main() {
    // `cargo bench` passes --bench; ignore harness arguments.
    println!("{}", bench_harness::run_all(bench_harness::Scale::Smoke));
}
