//! Criterion benches and ablations for the congestion-control layer: per-ACK
//! cost of each algorithm and the DTS exact-exp vs fixed-point Taylor
//! ablation from Algorithm 1.

use congestion::{AlgorithmKind, SubflowCc};
use criterion::{criterion_group, criterion_main, Criterion};
use mptcp_energy::{epsilon_exact, epsilon_fixed_point, CcChoice};
use std::time::Duration;

fn flows() -> Vec<SubflowCc> {
    let mut out = Vec::new();
    for (w, rtt) in [(20.0, 0.02), (35.0, 0.05), (12.0, 0.1), (60.0, 0.2)] {
        let mut f = SubflowCc::new();
        f.cwnd = w;
        f.ssthresh = 1.0;
        f.observe_rtt(rtt * 0.7);
        f.observe_rtt(rtt);
        out.push(f);
    }
    out
}

fn bench_per_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_ack");
    for kind in AlgorithmKind::ALL {
        group.bench_function(kind.to_string(), |b| {
            let mut cc = kind.build(4);
            let mut fs = flows();
            let mut r = 0usize;
            b.iter(|| {
                cc.on_ack(r % 4, &mut fs, 1, false);
                r += 1;
                std::hint::black_box(fs[0].cwnd)
            });
        });
    }
    for cc_choice in [CcChoice::dts(), CcChoice::dts_phi()] {
        group.bench_function(cc_choice.label(), |b| {
            let mut cc = cc_choice.build(4);
            let mut fs = flows();
            let mut r = 0usize;
            b.iter(|| {
                cc.on_ack(r % 4, &mut fs, 1, false);
                r += 1;
                std::hint::black_box(fs[0].cwnd)
            });
        });
    }
    group.finish();
}

fn bench_epsilon_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dts_epsilon");
    group.bench_function("exact_exp", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r += 1;
            std::hint::black_box(epsilon_exact((r % 1000) as f64 / 1000.0, 10.0, 0.5))
        });
    });
    group.bench_function("fixed_point_taylor", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r += 1;
            std::hint::black_box(epsilon_fixed_point((r % 1000) as f64 / 1000.0))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_secs(1));
    targets = bench_per_ack, bench_epsilon_ablation
}
criterion_main!(benches);
