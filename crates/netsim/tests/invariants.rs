//! Simulator invariants under randomized traffic: packet conservation,
//! FIFO link ordering, and clock monotonicity.

use netsim::prelude::*;
use proptest::prelude::*;

/// Records every delivered packet id and its arrival time.
#[derive(Default)]
struct Recorder {
    arrivals: Vec<(SimTime, u64)>,
}

impl Agent for Recorder {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.arrivals.push((ctx.now(), pkt.id));
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Injected = delivered + dropped, for any burst size / queue limit.
    #[test]
    fn packets_are_conserved(
        n_pkts in 1usize..400,
        queue_limit in 1usize..64,
        size in 100u32..1500,
        bw_mbps in 1u64..100,
    ) {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(
            LinkConfig::new(bw_mbps * 1_000_000, SimDuration::from_micros(50))
                .queue_limit(queue_limit),
        );
        let sink = sim.add_agent(Box::new(Recorder::default()));
        let route = Route::new(vec![l], sink);
        for _ in 0..n_pkts {
            sim.world_mut().send_packet(sink, route.clone(), size, Payload::Raw);
        }
        sim.run_until(SimTime::from_secs_f64(60.0));
        let delivered = sim.agent::<Recorder>(sink).arrivals.len() as u64;
        let dropped = sim.world().dropped_pkts;
        prop_assert_eq!(delivered + dropped, n_pkts as u64);
        // The link's own counters agree.
        prop_assert_eq!(sim.world().link(l).stats().tx_pkts, delivered);
        prop_assert_eq!(sim.world().link(l).stats().drops, dropped);
    }

    /// A FIFO link delivers surviving packets in injection order, at
    /// strictly increasing times.
    #[test]
    fn fifo_order_is_preserved(
        n_pkts in 2usize..200,
        queue_limit in 1usize..50,
    ) {
        let mut sim = Simulator::new(2);
        let l = sim.add_link(
            LinkConfig::new(10_000_000, SimDuration::from_micros(10)).queue_limit(queue_limit),
        );
        let sink = sim.add_agent(Box::new(Recorder::default()));
        let route = Route::new(vec![l], sink);
        let mut ids = Vec::new();
        for _ in 0..n_pkts {
            ids.push(sim.world_mut().send_packet(sink, route.clone(), 500, Payload::Raw));
        }
        sim.run_until(SimTime::from_secs_f64(60.0));
        let arrivals = &sim.agent::<Recorder>(sink).arrivals;
        for pair in arrivals.windows(2) {
            prop_assert!(pair[0].1 < pair[1].1, "ids out of order");
            prop_assert!(pair[0].0 <= pair[1].0, "time went backwards");
        }
    }

    /// Utilization never exceeds 1 and queue occupancy never exceeds the
    /// configured bound.
    #[test]
    fn capacity_and_queue_bounds_hold(
        n_pkts in 1usize..300,
        queue_limit in 1usize..40,
    ) {
        let mut sim = Simulator::new(3);
        let l = sim.add_link(
            LinkConfig::new(5_000_000, SimDuration::from_micros(100)).queue_limit(queue_limit),
        );
        let sink = sim.add_agent(Box::new(Recorder::default()));
        let route = Route::new(vec![l], sink);
        for _ in 0..n_pkts {
            sim.world_mut().send_packet(sink, route.clone(), 1000, Payload::Raw);
        }
        sim.run_until(SimTime::from_secs_f64(30.0));
        prop_assert!(sim.world().link(l).utilization(sim.now()) <= 1.0 + 1e-9);
        prop_assert!(sim.world().link(l).stats().max_qlen <= queue_limit);
        prop_assert_eq!(sim.world().link(l).queue_len(), 0, "queue must drain");
    }
}
