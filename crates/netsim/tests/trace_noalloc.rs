//! Pins the tentpole's hot-path cost claim: with **no** trace sink
//! installed, running the simulator — event-queue pops, agent dispatch, link
//! enqueues, and the `World::emit` calls at every instrumentation site —
//! performs zero heap allocations once the steady state is reached.
//!
//! The counting allocator wraps `System`; the test runs a packet ping-pong
//! workload twice (the first pass warms `Vec`/`VecDeque` capacity inside the
//! event queue and link buffers) and asserts the second pass allocates
//! nothing.

// The workspace denies `unsafe_code`; this test is the single sanctioned
// exception — implementing `GlobalAlloc` (inherently unsafe) to count
// allocations. The impl only delegates to `System` and bumps an atomic.
#![allow(unsafe_code)]

use netsim::prelude::*;
use netsim::sim::{Agent, Ctx};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Echoes each packet back until `remaining` hits zero: a self-sustaining
/// workload exercising send, enqueue, tx-done, forward, and deliver.
struct PingPong {
    reverse: Arc<Route>,
    remaining: u64,
}

impl Agent for PingPong {
    fn on_packet(&mut self, _pkt: Packet, ctx: &mut Ctx<'_>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.reverse.clone(), 1500, Payload::Raw);
        }
    }
    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        ctx.send(self.reverse.clone(), 1500, Payload::Raw);
    }
}

fn run_volley(sim: &mut Simulator, a: usize, rounds: u64) {
    sim.agent_mut::<PingPong>(a).remaining = rounds;
    sim.kick(a, SimDuration::ZERO, 0);
    sim.run_to_completion();
}

#[test]
fn disabled_tracing_adds_no_hot_path_allocations() {
    let mut sim = Simulator::new(3);
    let fwd = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_micros(50)));
    let back = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_micros(50)));
    let a = sim.add_agent_with(|id| {
        Box::new(PingPong { reverse: Route::new(vec![back], id), remaining: 0 })
    });
    // `b` echoes (effectively) forever; `a`'s counter bounds each volley.
    let b = sim
        .add_agent(Box::new(PingPong { reverse: Route::new(vec![fwd], a), remaining: u64::MAX }));
    sim.agent_mut::<PingPong>(a).reverse = Route::new(vec![fwd], b);

    // Warm-up: grows the event queue and link ring buffers to capacity.
    run_volley(&mut sim, a, 5_000);
    let before = ALLOCS.load(Ordering::Relaxed);
    run_volley(&mut sim, a, 5_000);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state event loop with tracing disabled must not allocate"
    );
}
