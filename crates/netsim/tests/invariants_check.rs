//! Online invariant checker behaviour (only built with `check-invariants`):
//! default invariants hold under heavy impaired traffic, and a deliberately
//! failing check halts every run loop at the violating event.

#![cfg(feature = "check-invariants")]

use netsim::check::install_default_invariants;
use netsim::prelude::*;

#[derive(Default)]
struct Sink {
    delivered: u64,
}

impl Agent for Sink {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
        self.delivered += 1;
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
}

fn impaired_sim(seed: u64) -> (Simulator, LinkId, AgentId) {
    let mut sim = Simulator::new(seed);
    let l = sim.add_link(LinkConfig::new(5_000_000, SimDuration::from_micros(200)).queue_limit(8));
    {
        let imp = sim.world_mut().link_mut(l).impairment_mut();
        imp.set_loss(LossModel::iid(0.05));
        imp.set_reorder(ReorderModel::uniform(0.2, SimDuration::from_millis(3)));
        imp.set_duplicate(0.1);
        imp.set_corrupt(0.1);
    }
    let sink = sim.add_agent(Box::new(Sink::default()));
    (sim, l, sink)
}

#[test]
fn default_invariants_hold_under_impaired_traffic() {
    let (mut sim, l, sink) = impaired_sim(21);
    install_default_invariants(&mut sim);
    let route = Route::new(vec![l], sink);
    for _ in 0..500 {
        sim.world_mut().send_packet(sink, route.clone(), 700, Payload::Raw);
    }
    sim.run_until(SimTime::from_secs_f64(30.0));
    assert!(sim.invariant_violation().is_none(), "{:?}", sim.invariant_violation());
    assert!(!sim.invariant_halted());
    assert!(sim.agent::<Sink>(sink).delivered > 0);
    assert_eq!(sim.now(), SimTime::from_secs_f64(30.0), "clock reaches the deadline");
}

#[test]
fn a_failing_check_halts_run_loops_at_the_violation() {
    let (mut sim, l, sink) = impaired_sim(22);
    install_default_invariants(&mut sim);
    let fail_after = SimTime::from_secs_f64(0.01);
    sim.add_invariant_check(Box::new(move |s: &Simulator| {
        if s.now() >= fail_after {
            Err(format!("deliberate failure past t={:.3}s", fail_after.as_secs_f64()))
        } else {
            Ok(())
        }
    }));
    let route = Route::new(vec![l], sink);
    for _ in 0..500 {
        sim.world_mut().send_packet(sink, route.clone(), 700, Payload::Raw);
    }
    sim.run_until(SimTime::from_secs_f64(30.0));
    let v = sim.invariant_violation().expect("violation must be recorded").clone();
    assert!(v.message.contains("deliberate failure"), "{}", v.message);
    assert!(v.at >= fail_after);
    assert!(sim.invariant_halted());
    // The clock freezes at the violating event rather than jumping to the
    // deadline, and further stepping refuses to run.
    assert!(sim.now() < SimTime::from_secs_f64(30.0));
    let frozen = sim.now();
    assert!(!sim.step());
    assert_eq!(sim.now(), frozen);
    assert!(sim.pending_events() > 0, "events remain but the simulator is halted");
    let display = format!("{v}");
    assert!(display.contains("invariant violated at t="), "{display}");
}

#[test]
fn checker_runs_are_byte_identical_to_unchecked_runs() {
    let run = |checked: bool| {
        let (mut sim, l, sink) = impaired_sim(23);
        if checked {
            install_default_invariants(&mut sim);
        }
        let route = Route::new(vec![l], sink);
        for _ in 0..300 {
            sim.world_mut().send_packet(sink, route.clone(), 700, Payload::Raw);
        }
        sim.run_until(SimTime::from_secs_f64(20.0));
        format!(
            "{:?}/{}/{:?}",
            sim.world().link_counters(),
            sim.agent::<Sink>(sink).delivered,
            sim.now()
        )
    };
    assert_eq!(run(false), run(true));
}
