//! Delivery impairments end to end: reordering breaks FIFO delivery,
//! duplication delivers the same packet twice, corruption delivers poisoned
//! packets, and every impaired copy still satisfies per-link conservation.

use netsim::prelude::*;
use obs::TraceEvent;
use std::sync::{Arc, Mutex};

/// Records every delivered packet (id, corrupted flag) with its arrival time.
#[derive(Default)]
struct Recorder {
    arrivals: Vec<(SimTime, u64, bool)>,
}

impl Agent for Recorder {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.arrivals.push((ctx.now(), pkt.id, pkt.corrupted));
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
}

fn one_link_sim(seed: u64) -> (Simulator, LinkId, AgentId) {
    let mut sim = Simulator::new(seed);
    let l =
        sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_micros(100)).queue_limit(1000));
    let sink = sim.add_agent(Box::new(Recorder::default()));
    (sim, l, sink)
}

fn blast(sim: &mut Simulator, l: LinkId, sink: AgentId, n: usize) -> Vec<u64> {
    let route = Route::new(vec![l], sink);
    (0..n).map(|_| sim.world_mut().send_packet(sink, route.clone(), 500, Payload::Raw)).collect()
}

#[test]
fn reordering_breaks_fifo_delivery() {
    let (mut sim, l, sink) = one_link_sim(11);
    sim.world_mut()
        .link_mut(l)
        .impairment_mut()
        .set_reorder(ReorderModel::uniform(0.3, SimDuration::from_millis(5)));
    let ids = blast(&mut sim, l, sink, 200);
    sim.run_until(SimTime::from_secs_f64(10.0));
    let arrivals = &sim.agent::<Recorder>(sink).arrivals;
    assert_eq!(arrivals.len(), ids.len(), "reordering must not lose packets");
    let order: Vec<u64> = arrivals.iter().map(|a| a.1).collect();
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_ne!(order, sorted, "with 30% jitter some pair must arrive out of order");
    assert_eq!(sorted, ids, "every injected packet arrives exactly once");
    let st = sim.world().link(l).stats();
    assert!(st.reordered > 0, "reordered counter must record jittered copies");
    assert_eq!(st.duplicated + st.corrupted, 0);
}

#[test]
fn duplication_delivers_the_same_packet_twice() {
    let (mut sim, l, sink) = one_link_sim(12);
    sim.world_mut().link_mut(l).impairment_mut().set_duplicate(0.5);
    let ids = blast(&mut sim, l, sink, 200);
    sim.run_until(SimTime::from_secs_f64(10.0));
    let arrivals = &sim.agent::<Recorder>(sink).arrivals;
    let dup = sim.world().link(l).stats().duplicated;
    assert!(dup > 50, "with p=0.5 over 200 packets, many must duplicate (got {dup})");
    assert_eq!(arrivals.len() as u64, ids.len() as u64 + dup);
    // Each id arrives once or twice, never zero or three times.
    for id in &ids {
        let copies = arrivals.iter().filter(|a| a.1 == *id).count();
        assert!((1..=2).contains(&copies), "packet {id} delivered {copies} times");
    }
}

#[test]
fn corruption_delivers_poisoned_packets() {
    let (mut sim, l, sink) = one_link_sim(13);
    sim.world_mut().link_mut(l).impairment_mut().set_corrupt(0.25);
    let ids = blast(&mut sim, l, sink, 400);
    sim.run_until(SimTime::from_secs_f64(10.0));
    let arrivals = &sim.agent::<Recorder>(sink).arrivals;
    assert_eq!(arrivals.len(), ids.len(), "corruption delivers, it does not drop");
    let poisoned = arrivals.iter().filter(|a| a.2).count() as u64;
    assert_eq!(poisoned, sim.world().link(l).stats().corrupted);
    assert!(poisoned > 50, "with p=0.25 over 400 packets, many must be poisoned");
}

#[test]
fn impairments_are_traced_and_conserved() {
    let (mut sim, l, sink) = one_link_sim(14);
    {
        let imp = sim.world_mut().link_mut(l).impairment_mut();
        imp.set_reorder(ReorderModel::uniform(0.2, SimDuration::from_millis(2)));
        imp.set_duplicate(0.2);
        imp.set_corrupt(0.2);
    }
    let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    sim.set_trace_sink(Box::new(events.clone()));
    blast(&mut sim, l, sink, 300);
    sim.run_until(SimTime::from_secs_f64(10.0));
    let st = sim.world().link(l).stats();
    // Conservation with duplication: offered counts each offer once; dup
    // copies materialize after tx, so delivered = tx + duplicated.
    assert_eq!(st.offered, 300);
    assert_eq!(sim.agent::<Recorder>(sink).arrivals.len() as u64, st.tx_pkts + st.duplicated);
    let impair_counts = |kind: &str| {
        events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| {
                if let TraceEvent::Impair { kind: k, .. } = e {
                    k.name() == kind
                } else {
                    false
                }
            })
            .count() as u64
    };
    assert_eq!(impair_counts("reorder"), st.reordered);
    assert_eq!(impair_counts("duplicate"), st.duplicated);
    assert_eq!(impair_counts("corrupt"), st.corrupted);
    assert!(st.reordered > 0 && st.duplicated > 0 && st.corrupted > 0);
}

#[test]
fn scripted_impairments_switch_on_at_their_instant() {
    let (mut sim, l, sink) = one_link_sim(15);
    FaultScript::new()
        .at(SimTime::from_secs_f64(0.05), FaultAction::SetDuplicate { link: l, p: 1.0 })
        .at(SimTime::from_secs_f64(0.1), FaultAction::SetDuplicate { link: l, p: 0.0 })
        .install(&mut sim);
    // Timer-driven injection so sends happen at scripted times: one packet
    // before the duplication window, one inside it, one after.
    struct Injector {
        link: LinkId,
        sink: AgentId,
    }
    impl Agent for Injector {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            let route = Route::new(vec![self.link], self.sink);
            ctx.send(route, 500, Payload::Raw);
        }
    }
    let inj = sim.add_agent(Box::new(Injector { link: l, sink }));
    for t in [0.0f64, 0.06, 0.12] {
        sim.kick(inj, SimDuration::from_secs_f64(t), 1);
    }
    sim.run_until(SimTime::from_secs_f64(1.0));
    // Exactly the packet sent inside [0.05, 0.1) duplicates.
    assert_eq!(sim.world().link(l).stats().duplicated, 1);
    assert_eq!(sim.agent::<Recorder>(sink).arrivals.len(), 4);
}

#[test]
fn inactive_impairments_leave_runs_byte_identical() {
    // A run with impairment structs present-but-inert must consume the RNG
    // identically to a run that never touched them (delivery impairments
    // draw nothing when off).
    let run = |configure: bool| {
        let (mut sim, l, sink) = one_link_sim(16);
        if configure {
            let imp = sim.world_mut().link_mut(l).impairment_mut();
            imp.set_reorder(ReorderModel::None);
            imp.set_duplicate(0.0);
            imp.set_corrupt(0.0);
        }
        blast(&mut sim, l, sink, 100);
        sim.run_until(SimTime::from_secs_f64(5.0));
        format!("{:?}", sim.agent::<Recorder>(sink).arrivals)
    };
    assert_eq!(run(false), run(true));
}
