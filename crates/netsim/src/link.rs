//! Links: bandwidth, propagation delay, DropTail queues, ECN marking.
//!
//! A [`Link`] is a unidirectional store-and-forward pipe. Packets that arrive
//! while the link is transmitting join a FIFO queue bounded by
//! [`LinkConfig::queue_limit_pkts`]; arrivals beyond the bound are dropped
//! (DropTail). If an ECN threshold `K` is configured, an arriving packet is
//! marked Congestion-Experienced when the instantaneous occupancy it finds —
//! the packet in service plus the queued packets — is strictly greater than
//! `K`, which is DCTCP's marking discipline ("mark if queue occupancy > K
//! upon arrival", Alizadeh et al.).

use crate::faults::Impairment;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Configuration of a unidirectional link.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkConfig {
    /// Transmission rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// DropTail queue bound, in packets (excluding the packet in service).
    pub queue_limit_pkts: usize,
    /// ECN marking threshold `K` in packets: an arriving packet is CE-marked
    /// when the occupancy it finds (in-service + queued packets) is strictly
    /// greater than `K`. `None` disables marking.
    pub ecn_threshold_pkts: Option<usize>,
}

impl LinkConfig {
    /// A link with the given rate (bits/s) and propagation delay and a default
    /// 100-packet DropTail queue, no ECN.
    pub fn new(bandwidth_bps: u64, propagation: SimDuration) -> Self {
        LinkConfig { bandwidth_bps, propagation, queue_limit_pkts: 100, ecn_threshold_pkts: None }
    }

    /// Sets the DropTail queue bound in packets.
    pub fn queue_limit(mut self, pkts: usize) -> Self {
        self.queue_limit_pkts = pkts;
        self
    }

    /// Enables ECN marking at threshold `k` packets.
    pub fn ecn_threshold(mut self, k: usize) -> Self {
        self.ecn_threshold_pkts = Some(k);
        self
    }

    /// Serialization delay of `bytes` at this link's rate.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth is zero.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        assert!(self.bandwidth_bps > 0, "link bandwidth must be positive");
        let ns = (u128::from(bytes) * 8 * 1_000_000_000) / u128::from(self.bandwidth_bps);
        // A bare `as u64` here used to truncate: u32::MAX bytes at 1 bit/s is
        // ~3.4e19 ns, past u64::MAX, and wrapped to a *shorter* delay.
        SimDuration::from_nanos_u128(ns)
    }
}

/// Counters accumulated by a link over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets fully transmitted.
    pub tx_pkts: u64,
    /// Bytes fully transmitted.
    pub tx_bytes: u64,
    /// Packets dropped by DropTail.
    pub drops: u64,
    /// Packets CE-marked by ECN.
    pub ecn_marks: u64,
    /// High-water mark of queue occupancy (packets, excluding in-service).
    pub max_qlen: usize,
    /// Packets lost to the link's random-loss impairment
    /// ([`crate::faults::LossModel`]).
    pub random_losses: u64,
    /// Packets dropped because the link was down, including queued packets
    /// drained when the link went down.
    pub blackout_drops: u64,
    /// Packets offered to the link (whether accepted, queued, or dropped).
    /// Conservation invariant: `offered = tx_pkts + queue_len + in_service +
    /// drops + random_losses + blackout_drops` at any event boundary.
    pub offered: u64,
    /// Packet copies delayed by the reorder impairment after transmission.
    pub reordered: u64,
    /// Extra packet copies created by the duplication impairment.
    pub duplicated: u64,
    /// Packets poisoned by the corruption impairment (still delivered).
    pub corrupted: u64,
}

/// Runtime state of a unidirectional link.
#[derive(Debug)]
pub struct Link {
    cfg: LinkConfig,
    impairment: Impairment,
    queue: VecDeque<Packet>,
    in_flight: Option<Packet>,
    /// Memo of the last two `(size, serialization delay)` pairs, so the
    /// u128 multiply/divide in [`LinkConfig::serialization`] leaves the
    /// per-packet path (traffic is dominated by one data size and one ACK
    /// size). Invalidated by [`Link::set_bandwidth`] and
    /// [`Link::set_background_bps`].
    ser_cache: [Option<(u32, SimDuration)>; 2],
    /// Bits/second of capacity claimed by an external background load (the
    /// hybrid engine's fluid regime). Packets serialize at the residual
    /// rate; see [`Link::set_background_bps`].
    background_bps: u64,
    /// Integral of queue length over time (packet-seconds), for mean-queue
    /// telemetry used by energy-proportional pricing.
    qlen_integral: f64,
    last_q_change: SimTime,
    stats: LinkStats,
}

/// What happened when a packet was offered to a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// The link was idle; transmission starts now and completes after the
    /// contained serialization delay.
    StartTx(SimDuration),
    /// The packet joined the queue.
    Queued,
    /// The queue was full; the packet was dropped.
    Dropped,
}

impl Link {
    /// Creates an idle link.
    pub fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            impairment: Impairment::default(),
            queue: VecDeque::new(),
            in_flight: None,
            ser_cache: [None; 2],
            background_bps: 0,
            qlen_integral: 0.0,
            last_q_change: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Changes the link rate at runtime (failure injection / rate
    /// adaptation). The packet currently in service keeps its old
    /// serialization schedule; subsequent packets use the new rate.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn set_bandwidth(&mut self, bps: u64) {
        assert!(bps > 0, "bandwidth must be positive");
        self.cfg.bandwidth_bps = bps;
        self.ser_cache = [None; 2];
    }

    /// Declares that an external (flow-level) background load occupies `bps`
    /// of this link, so packet-level traffic serializes at the residual rate
    /// `bandwidth − bps`. The residual is floored at 1% of the nominal rate
    /// (never zero): the fluid regime may claim at most 99% of a shared
    /// link, which keeps the packet engine live and serialization delays
    /// finite. The nominal configuration is untouched and
    /// [`Link::utilization`] keeps measuring against nominal capacity.
    ///
    /// The packet currently in service keeps its old serialization schedule;
    /// subsequent packets use the residual rate.
    pub fn set_background_bps(&mut self, bps: u64) {
        if bps != self.background_bps {
            self.background_bps = bps;
            self.ser_cache = [None; 2];
        }
    }

    /// The background load installed by [`Link::set_background_bps`].
    pub fn background_bps(&self) -> u64 {
        self.background_bps
    }

    /// The residual rate packet traffic serializes at: nominal bandwidth
    /// minus background load, floored at 1% of nominal.
    pub fn effective_bandwidth_bps(&self) -> u64 {
        let floor = (self.cfg.bandwidth_bps / 100).max(1);
        self.cfg.bandwidth_bps.saturating_sub(self.background_bps).max(floor)
    }

    /// [`LinkConfig::serialization`] through the link's two-entry memo, at
    /// the residual (background-adjusted) rate.
    fn serialization_cached(&mut self, bytes: u32) -> SimDuration {
        if let Some((b, d)) = self.ser_cache[0] {
            if b == bytes {
                return d;
            }
        }
        if let Some((b, d)) = self.ser_cache[1] {
            if b == bytes {
                // Promote so the other hot size stays resident too.
                self.ser_cache.swap(0, 1);
                return d;
            }
        }
        let d = if self.background_bps == 0 {
            self.cfg.serialization(bytes)
        } else {
            LinkConfig { bandwidth_bps: self.effective_bandwidth_bps(), ..self.cfg.clone() }
                .serialization(bytes)
        };
        self.ser_cache[1] = self.ser_cache[0];
        self.ser_cache[0] = Some((bytes, d));
        d
    }

    /// Changes the propagation delay at runtime (mobility / path change
    /// injection). Applies to packets completing transmission afterwards.
    pub fn set_propagation(&mut self, propagation: SimDuration) {
        self.cfg.propagation = propagation;
    }

    /// The link's impairment state (loss model, up/down).
    pub fn impairment(&self) -> &Impairment {
        &self.impairment
    }

    /// Mutable impairment state, e.g. to install a loss model at setup time.
    pub fn impairment_mut(&mut self) -> &mut Impairment {
        &mut self.impairment
    }

    /// Whether the link is administratively up.
    pub fn is_up(&self) -> bool {
        self.impairment.is_up()
    }

    /// Rolls the loss impairment for one offered packet, counting a loss.
    /// `true` means the packet is lost before reaching the queue.
    pub(crate) fn roll_loss(&mut self, rng: &mut rand::rngs::SmallRng) -> bool {
        let lost = self.impairment.roll_loss(rng);
        if lost {
            self.stats.random_losses += 1;
        }
        lost
    }

    /// Counts a packet dropped because the link was down.
    pub(crate) fn note_blackout_drop(&mut self) {
        self.stats.blackout_drops += 1;
    }

    /// Counts a packet offered to the link (for conservation accounting).
    pub(crate) fn note_offered(&mut self) {
        self.stats.offered += 1;
    }

    /// Counts a packet copy delayed by the reorder impairment.
    pub(crate) fn note_reordered(&mut self) {
        self.stats.reordered += 1;
    }

    /// Counts an extra copy created by the duplication impairment.
    pub(crate) fn note_duplicated(&mut self) {
        self.stats.duplicated += 1;
    }

    /// Counts a packet poisoned by the corruption impairment.
    pub(crate) fn note_corrupted(&mut self) {
        self.stats.corrupted += 1;
    }

    /// Sets the link administratively up or down at time `now`. Going down
    /// drains the queue (each drained packet counts as a blackout drop) and
    /// returns the drained packet ids (so the caller can trace each drop); a
    /// packet already in service completes its transmission. Going up (or a
    /// no-op transition) returns an empty list without allocating.
    pub(crate) fn set_up(&mut self, up: bool, now: SimTime) -> Vec<u64> {
        let was_up = self.impairment.is_up();
        self.impairment.set_up(up);
        if up || !was_up {
            return Vec::new();
        }
        self.note_q_change(now);
        let drained: Vec<u64> = self.queue.drain(..).map(|p| p.id).collect();
        self.stats.blackout_drops += drained.len() as u64;
        drained
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Current queue occupancy in packets (excluding the packet in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the link is currently transmitting a packet.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Mean queue length in packets over `[0, now]`.
    pub fn mean_queue_len(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            let tail =
                self.queue.len() as f64 * (now.saturating_since(self.last_q_change)).as_secs_f64();
            (self.qlen_integral + tail) / secs
        }
    }

    /// Utilization of the link over `[0, now]`: transmitted bits divided by
    /// capacity-time.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            (self.stats.tx_bytes as f64 * 8.0) / (self.cfg.bandwidth_bps as f64 * secs)
        }
    }

    fn note_q_change(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_q_change).as_secs_f64();
        self.qlen_integral += self.queue.len() as f64 * dt;
        self.last_q_change = now;
    }

    /// Offers `pkt` to the link at time `now`.
    ///
    /// The caller (the simulator) is responsible for scheduling the
    /// transmission-complete event when `StartTx` is returned.
    pub fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> Enqueue {
        if self.in_flight.is_none() {
            debug_assert!(self.queue.is_empty());
            let ser = self.serialization_cached(pkt.size_bytes);
            self.in_flight = Some(pkt);
            Enqueue::StartTx(ser)
        } else if self.queue.len() < self.cfg.queue_limit_pkts {
            if let Some(k) = self.cfg.ecn_threshold_pkts {
                // DCTCP: mark when arrival occupancy — the in-service packet
                // plus the queued ones — strictly exceeds K. (This used to be
                // `>=`, marking one packet early at the boundary.)
                if self.queue.len() + 1 > k {
                    pkt.ecn_ce = true;
                    self.stats.ecn_marks += 1;
                }
            }
            self.note_q_change(now);
            self.queue.push_back(pkt);
            self.stats.max_qlen = self.stats.max_qlen.max(self.queue.len());
            Enqueue::Queued
        } else {
            self.stats.drops += 1;
            Enqueue::Dropped
        }
    }

    /// Completes the in-service transmission at time `now`, returning the
    /// transmitted packet and, if the queue was non-empty, the next packet's
    /// serialization delay (its transmission starts immediately).
    ///
    /// # Panics
    ///
    /// Panics if the link was not transmitting.
    pub fn tx_done(&mut self, now: SimTime) -> (Packet, Option<SimDuration>) {
        // simlint: allow(P001, documented panic: the simulator only schedules TxDone while a transmission is in service, so an idle link here is event-queue corruption)
        let pkt = self.in_flight.take().expect("tx_done on idle link");
        self.stats.tx_pkts += 1;
        self.stats.tx_bytes += u64::from(pkt.size_bytes);
        let next = if let Some(next_pkt) = {
            self.note_q_change(now);
            self.queue.pop_front()
        } {
            let ser = self.serialization_cached(next_pkt.size_bytes);
            self.in_flight = Some(next_pkt);
            Some(ser)
        } else {
            None
        };
        (pkt, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Payload, Route};

    fn pkt(size: u32) -> Packet {
        Packet {
            id: 0,
            src: 0,
            size_bytes: size,
            sent_at: SimTime::ZERO,
            ecn_ce: false,
            hop: 0,
            corrupted: false,
            route: Route::direct(0),
            payload: Payload::Raw,
        }
    }

    #[test]
    fn serialization_delay() {
        let cfg = LinkConfig::new(100_000_000, SimDuration::from_millis(1));
        // 1500 bytes at 100 Mb/s = 120 us.
        assert_eq!(cfg.serialization(1500), SimDuration::from_micros(120));
    }

    #[test]
    fn serialization_saturates_instead_of_wrapping() {
        // Regression: `ns as u64` truncated the u128 intermediate for a
        // u32::MAX-byte packet on a 1 bit/s link (~3.4e19 ns > u64::MAX),
        // silently *shortening* the delay. It must clamp to the maximum
        // representable duration instead.
        let cfg = LinkConfig::new(1, SimDuration::ZERO);
        assert_eq!(cfg.serialization(u32::MAX), SimDuration::from_nanos(u64::MAX));
        // Ordinary values are unchanged by the checked path.
        let fast = LinkConfig::new(100_000_000, SimDuration::ZERO);
        assert_eq!(fast.serialization(1500), SimDuration::from_micros(120));
    }

    #[test]
    fn from_nanos_u128_roundtrips_in_range() {
        assert_eq!(SimDuration::from_nanos_u128(42), SimDuration::from_nanos(42));
        assert_eq!(
            SimDuration::from_nanos_u128(u128::from(u64::MAX) + 1),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn idle_link_starts_transmitting() {
        let mut l = Link::new(LinkConfig::new(8_000_000, SimDuration::ZERO));
        match l.enqueue(pkt(1000), SimTime::ZERO) {
            Enqueue::StartTx(d) => assert_eq!(d, SimDuration::from_millis(1)),
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(l.is_busy());
    }

    #[test]
    fn droptail_drops_beyond_limit() {
        let cfg = LinkConfig::new(8_000_000, SimDuration::ZERO).queue_limit(2);
        let mut l = Link::new(cfg);
        assert!(matches!(l.enqueue(pkt(100), SimTime::ZERO), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(100), SimTime::ZERO), Enqueue::Queued);
        assert_eq!(l.enqueue(pkt(100), SimTime::ZERO), Enqueue::Queued);
        assert_eq!(l.enqueue(pkt(100), SimTime::ZERO), Enqueue::Dropped);
        assert_eq!(l.stats().drops, 1);
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn tx_done_chains_queue() {
        let cfg = LinkConfig::new(8_000_000, SimDuration::ZERO);
        let mut l = Link::new(cfg);
        let _ = l.enqueue(pkt(1000), SimTime::ZERO);
        let _ = l.enqueue(pkt(500), SimTime::ZERO);
        let (done, next) = l.tx_done(SimTime::from_secs_f64(0.001));
        assert_eq!(done.size_bytes, 1000);
        assert_eq!(next, Some(SimDuration::from_micros(500)));
        let (done2, next2) = l.tx_done(SimTime::from_secs_f64(0.0015));
        assert_eq!(done2.size_bytes, 500);
        assert_eq!(next2, None);
        assert!(!l.is_busy());
        assert_eq!(l.stats().tx_pkts, 2);
        assert_eq!(l.stats().tx_bytes, 1500);
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let cfg = LinkConfig::new(8_000_000, SimDuration::ZERO).queue_limit(10).ecn_threshold(2);
        let mut l = Link::new(cfg);
        let _ = l.enqueue(pkt(100), SimTime::ZERO); // in service
        let _ = l.enqueue(pkt(100), SimTime::ZERO); // finds occupancy 1 <= K
        let _ = l.enqueue(pkt(100), SimTime::ZERO); // finds occupancy 2 <= K
        let _ = l.enqueue(pkt(100), SimTime::ZERO); // finds occupancy 3 >  K -> marked
        assert_eq!(l.stats().ecn_marks, 1);
    }

    /// Pins the DCTCP marking boundary: with threshold K, an arrival that
    /// finds occupancy (in-service + queued) of exactly K−1 or K is *not*
    /// marked; K+1 is. Regression for the `>=` off-by-one that marked the
    /// occupancy-K arrival.
    #[test]
    fn ecn_boundary_at_exactly_k() {
        let k = 3;
        for (occupancy_found, expect_mark) in [(k - 1, false), (k, false), (k + 1, true)] {
            let cfg =
                LinkConfig::new(8_000_000, SimDuration::ZERO).queue_limit(10).ecn_threshold(k);
            let mut l = Link::new(cfg);
            // Build up `occupancy_found` resident packets: one in service,
            // the rest queued.
            for _ in 0..occupancy_found {
                let _ = l.enqueue(pkt(100), SimTime::ZERO);
            }
            assert_eq!(l.queue_len() + usize::from(l.is_busy()), occupancy_found);
            let marks_before = l.stats().ecn_marks;
            let _ = l.enqueue(pkt(100), SimTime::ZERO);
            assert_eq!(
                l.stats().ecn_marks - marks_before,
                u64::from(expect_mark),
                "arrival finding occupancy {occupancy_found} with K={k}"
            );
        }
    }

    #[test]
    fn serialization_cache_tracks_bandwidth_changes() {
        let mut l = Link::new(LinkConfig::new(8_000_000, SimDuration::ZERO));
        // Warm the cache via the in-service path.
        assert_eq!(
            l.enqueue(pkt(1000), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_millis(1))
        );
        let _ = l.tx_done(SimTime::from_secs_f64(0.001));
        // Same size again: served from cache, same answer.
        assert_eq!(
            l.enqueue(pkt(1000), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_millis(1))
        );
        let _ = l.tx_done(SimTime::from_secs_f64(0.002));
        // Rate change invalidates the memo.
        l.set_bandwidth(16_000_000);
        assert_eq!(
            l.enqueue(pkt(1000), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_micros(500))
        );
        let _ = l.tx_done(SimTime::from_secs_f64(0.003));
        // A third distinct size evicts the oldest entry but keeps answers exact.
        assert_eq!(
            l.enqueue(pkt(500), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_micros(250))
        );
        let _ = l.tx_done(SimTime::from_secs_f64(0.004));
        assert_eq!(
            l.enqueue(pkt(40), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_micros(20))
        );
        let _ = l.tx_done(SimTime::from_secs_f64(0.005));
        assert_eq!(
            l.enqueue(pkt(1000), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_micros(500))
        );
    }

    #[test]
    fn background_load_slows_serialization_and_invalidates_cache() {
        let mut l = Link::new(LinkConfig::new(8_000_000, SimDuration::ZERO));
        // Warm the cache at the nominal rate: 1000 B at 8 Mb/s = 1 ms.
        assert_eq!(
            l.enqueue(pkt(1000), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_millis(1))
        );
        let _ = l.tx_done(SimTime::from_secs_f64(0.001));
        // Half the link is now fluid background: residual 4 Mb/s → 2 ms.
        l.set_background_bps(4_000_000);
        assert_eq!(l.effective_bandwidth_bps(), 4_000_000);
        assert_eq!(
            l.enqueue(pkt(1000), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_millis(2))
        );
        let _ = l.tx_done(SimTime::from_secs_f64(0.003));
        // Clearing the background restores the nominal rate exactly.
        l.set_background_bps(0);
        assert_eq!(
            l.enqueue(pkt(1000), SimTime::ZERO),
            Enqueue::StartTx(SimDuration::from_millis(1))
        );
    }

    #[test]
    fn background_load_is_floored_at_one_percent_residual() {
        let mut l = Link::new(LinkConfig::new(8_000_000, SimDuration::ZERO));
        // Requesting the whole link (or more) leaves a 1% residual.
        l.set_background_bps(8_000_000);
        assert_eq!(l.effective_bandwidth_bps(), 80_000);
        l.set_background_bps(u64::MAX);
        assert_eq!(l.effective_bandwidth_bps(), 80_000);
        // The residual never hits zero even on a 1 bit/s link.
        let mut tiny = Link::new(LinkConfig::new(1, SimDuration::ZERO));
        tiny.set_background_bps(u64::MAX);
        assert_eq!(tiny.effective_bandwidth_bps(), 1);
    }

    #[test]
    fn utilization_measures_against_nominal_capacity_under_background() {
        let mut l = Link::new(LinkConfig::new(8_000_000, SimDuration::ZERO));
        l.set_background_bps(4_000_000);
        let _ = l.enqueue(pkt(1000), SimTime::ZERO);
        let _ = l.tx_done(SimTime::from_secs_f64(0.002));
        // 8000 bits over 2 ms against the *nominal* 8 Mb/s: 50%.
        let u = l.utilization(SimTime::from_secs_f64(0.002));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn utilization_and_mean_queue() {
        let cfg = LinkConfig::new(8_000_000, SimDuration::ZERO);
        let mut l = Link::new(cfg);
        let _ = l.enqueue(pkt(1000), SimTime::ZERO);
        let _ = l.tx_done(SimTime::from_secs_f64(0.001));
        // 8000 bits sent in 1 ms over an 8 Mb/s link => 100% busy for that ms.
        let u = l.utilization(SimTime::from_secs_f64(0.001));
        assert!((u - 1.0).abs() < 1e-9, "utilization {u}");
        assert!(l.mean_queue_len(SimTime::from_secs_f64(0.001)) < 1e-9);
    }

    #[test]
    #[should_panic]
    fn tx_done_on_idle_panics() {
        let mut l = Link::new(LinkConfig::new(1_000_000, SimDuration::ZERO));
        let _ = l.tx_done(SimTime::ZERO);
    }
}
