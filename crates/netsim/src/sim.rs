//! The discrete-event simulator core.
//!
//! A [`Simulator`] owns a set of [`Link`]s, a set of [`Agent`]s (protocol
//! endpoints and traffic sources), and a monotonic event queue. It is strictly
//! single-threaded and deterministic: given the same topology, agents, and
//! seed, two runs produce bit-identical results.
//!
//! # Examples
//!
//! ```
//! use netsim::prelude::*;
//!
//! /// An agent that counts delivered packets.
//! #[derive(Default)]
//! struct Counter { received: u64 }
//!
//! impl Agent for Counter {
//!     fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) { self.received += 1; }
//!     fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
//! }
//!
//! let mut sim = Simulator::new(42);
//! let link = sim.add_link(LinkConfig::new(1_000_000, SimDuration::from_millis(1)));
//! let sink = sim.add_agent(Box::new(Counter::default()));
//! let route = Route::new(vec![link], sink);
//! sim.world_mut().send_packet(sink, route, 125, Payload::Raw);
//! sim.run_until(SimTime::from_secs_f64(1.0));
//! assert_eq!(sim.agent::<Counter>(sink).received, 1);
//! ```

use crate::event::{EventKind, EventQueue, QueueKind};
use crate::faults::FaultAction;
use crate::link::{Enqueue, Link, LinkConfig};
use crate::packet::{AgentId, LinkId, Packet, Payload, Route};
use crate::pool::PacketPool;
use crate::time::{SimDuration, SimTime};
use obs::{DropCause, FaultKind, ImpairKind, LinkCounters, TraceEvent, TraceSink};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::sync::Arc;

/// A protocol endpoint or traffic source/sink driven by the simulator.
///
/// Agents receive packets addressed to them and timer callbacks they have
/// scheduled. All interaction with the network goes through the [`Ctx`]
/// passed to each callback.
///
/// Agents must be [`Send`]: a whole [`Simulator`] (with the agents it owns)
/// can be built on one thread and moved to another, which is what the sweep
/// runner's worker pool does to fan independent simulation cells across
/// cores. Each simulator is still strictly single-threaded while running —
/// `Send` only permits the hand-off, never sharing.
pub trait Agent: Any + Send {
    /// Called when a packet whose route terminates at this agent is delivered.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);
    /// Called when a timer scheduled by this agent fires. `token` is the value
    /// passed to [`Ctx::schedule_in`]; agents use it to distinguish and to
    /// invalidate stale timers.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>);
    /// Progress view for the stall watchdog ([`Simulator::enable_watchdog`]).
    /// Agents that represent monitorable flows return `Some`; the default is
    /// unmonitored.
    fn watched(&self) -> Option<&dyn Watched> {
        None
    }
}

/// The stall watchdog's view of a flow-like agent.
///
/// An agent is considered *stalled* when it reports itself mid-transfer
/// ([`Watched::in_flight`]) yet its [`Watched::progress`] counter has not
/// advanced across one whole watchdog interval.
pub trait Watched {
    /// A monotonic counter of forward progress (e.g. connection-level bytes
    /// or packets cumulatively acknowledged).
    fn progress(&self) -> u64;
    /// Whether the flow has started and not yet finished. Idle or completed
    /// flows are never reported as stalled.
    fn in_flight(&self) -> bool;
    /// A one-line diagnostic snapshot (cwnd / pipe / RTO state per subflow)
    /// embedded in [`StallReport`]s.
    fn diagnostics(&self) -> String;
}

/// Engine selection: which event-queue backend and packet storage a
/// simulator runs on. All configurations are *byte-identical in behavior* —
/// they differ only in speed — which is pinned across the chaos seeds by
/// `tests/sweep_determinism.rs` and `tests/chaos.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Event queue backend (timer wheel by default).
    pub queue: QueueKind,
    /// Store in-flight packets in the slab pool (default) instead of boxing
    /// them per event.
    pub pool_packets: bool,
    /// Coalesce consecutive same-time deliveries to one agent into a single
    /// dispatch (default). Ignored — forced off — under the
    /// `check-invariants` feature so invariant checks keep running after
    /// every individual event.
    pub batch_acks: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { queue: QueueKind::TimerWheel, pool_packets: true, batch_acks: true }
    }
}

impl EngineConfig {
    /// The reference engine: binary heap, boxed packets, no delivery
    /// batching. This is the pre-overhaul event loop, kept as the oracle the
    /// fast path is pinned against.
    pub fn reference() -> Self {
        EngineConfig { queue: QueueKind::BinaryHeap, pool_packets: false, batch_acks: false }
    }
}

/// Handle to a cancellable timer slot (see [`World::timer_slot`]).
///
/// Unlike fire-and-forget [`Ctx::schedule_in`] timers, a slot timer can be
/// re-armed and cancelled in O(1) without flooding the event queue: re-arming
/// to a *later* deadline (the common RTO-restart pattern) performs **zero**
/// queue operations — the already-queued wake event checks the slot's live
/// deadline when it fires and re-sleeps if the deadline moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerHandle(u32);

/// Backing state for one cancellable timer (see [`TimerHandle`]).
#[derive(Debug)]
struct TimerSlot {
    agent: AgentId,
    token: u64,
    /// Current deadline; meaningful only while `armed`.
    deadline: SimTime,
    armed: bool,
    /// Whether a wake event for this slot is in the queue, and when. Stale
    /// wakes (generation mismatch) are discarded on pop.
    has_event: bool,
    event_at: SimTime,
    wake_gen: u32,
}

/// The installed trace sink, if any. A newtype so [`World`] can keep its
/// `Debug` derive (sinks themselves need not be `Debug`).
struct TraceSlot(Option<Box<dyn TraceSink>>);

impl std::fmt::Debug for TraceSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "TraceSlot(installed)" } else { "TraceSlot(none)" })
    }
}

/// Shared simulation state: links, clock, event queue, RNG.
///
/// Exposed to agents through [`Ctx`] and to experiment drivers through
/// [`Simulator::world`] / [`Simulator::world_mut`].
#[derive(Debug)]
pub struct World {
    now: SimTime,
    links: Vec<Link>,
    queue: EventQueue,
    rng: SmallRng,
    next_pkt_id: u64,
    trace: TraceSlot,
    pool: PacketPool,
    timers: Vec<TimerSlot>,
    armed_count: u64,
    batch: bool,
    /// Total packets dropped by DropTail across all links.
    pub dropped_pkts: u64,
    /// Total packets lost to random-loss impairments across all links.
    pub random_losses: u64,
    /// Total packets dropped because a link was down (offers while down plus
    /// queue drains at the moment of going down), across all links.
    pub blackout_drops: u64,
}

impl World {
    fn new(seed: u64, engine: EngineConfig) -> Self {
        World {
            now: SimTime::ZERO,
            links: Vec::new(),
            queue: EventQueue::new(engine.queue),
            rng: SmallRng::seed_from_u64(seed),
            next_pkt_id: 0,
            trace: TraceSlot(None),
            pool: PacketPool::new(engine.pool_packets),
            timers: Vec::new(),
            armed_count: 0,
            batch: engine.batch_acks && !cfg!(feature = "check-invariants"),
            dropped_pkts: 0,
            random_losses: 0,
            blackout_drops: 0,
        }
    }

    /// Installs a trace sink; subsequent simulation events are recorded to
    /// it. Sinks **observe only** — they never touch the RNG or the event
    /// queue, so a traced run is byte-identical to an untraced one
    /// (pinned by `tests/sweep_determinism.rs`).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = TraceSlot(Some(sink));
    }

    /// Detaches and returns the trace sink, flushing it first.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = std::mem::replace(&mut self.trace, TraceSlot(None)).0;
        if let Some(s) = sink.as_mut() {
            s.flush();
        }
        sink
    }

    /// Whether a trace sink is installed. Instrumentation sites that would
    /// do extra work to *build* an event (beyond moving `Copy` fields) may
    /// gate on this.
    pub fn tracing(&self) -> bool {
        self.trace.0.is_some()
    }

    /// Records `ev` if a sink is installed. With no sink this is one branch
    /// on a niche — no allocation (pinned by `tests/trace_noalloc.rs`).
    #[inline]
    pub fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.trace.0.as_mut() {
            sink.record(&ev);
        }
    }

    /// The `u64` link id carried by trace events. [`LinkId`] is a `usize`
    /// index, so the conversion is lossless on every supported target; the
    /// fallback only exists to keep the conversion total.
    #[inline]
    fn trace_link_id(link: LinkId) -> u64 {
        u64::try_from(link).unwrap_or(u64::MAX)
    }

    /// Per-link counter snapshot (drops by cause, queue high-water),
    /// assembled from [`Link::stats`] — available whether or not a trace
    /// sink was installed.
    pub fn link_counters(&self) -> Vec<LinkCounters> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let s = l.stats();
                LinkCounters {
                    link: World::trace_link_id(i),
                    tx_pkts: s.tx_pkts,
                    offered: s.offered,
                    drops_queue: s.drops,
                    drops_fault: s.random_losses,
                    drops_blackout: s.blackout_drops,
                    ecn_marks: s.ecn_marks,
                    queue_high_water: s.max_qlen,
                    reordered: s.reordered,
                    duplicated: s.duplicated,
                    corrupted: s.corrupted,
                }
            })
            .collect()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The deterministic simulation RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Immutable access to a link.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id]
    }

    /// Mutable access to a link, for mid-run degradation or failure
    /// injection between [`crate::sim::Simulator::run_until`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id]
    }

    /// Number of registered links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Schedules `token` to fire at `agent` after `delay`.
    pub fn schedule_in(&mut self, agent: AgentId, delay: SimDuration, token: u64) {
        self.queue.push(self.now + delay, EventKind::Timer { agent, token });
    }

    /// Allocates a cancellable timer slot owned by `agent`. The handle stays
    /// valid for the life of the simulation; arm it with
    /// [`World::arm_timer`].
    pub fn timer_slot(&mut self, agent: AgentId) -> TimerHandle {
        let id = self.timers.len();
        self.timers.push(TimerSlot {
            agent,
            token: 0,
            deadline: SimTime::ZERO,
            armed: false,
            has_event: false,
            event_at: SimTime::ZERO,
            wake_gen: 0,
        });
        // simlint: allow(P001, documented panic: four billion live timer slots is out of scope by construction)
        TimerHandle(u32::try_from(id).expect("timer slot id overflow"))
    }

    /// (Re-)arms a slot timer to fire `token` at its owner after `delay`,
    /// replacing any previous arm. Re-arming to a later-or-equal deadline
    /// while a wake event is already pending costs zero queue operations:
    /// the pending wake consults the slot and re-sleeps.
    pub fn arm_timer(&mut self, h: TimerHandle, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        let s = &mut self.timers[h.0 as usize];
        s.token = token;
        s.deadline = at;
        if !s.armed {
            s.armed = true;
            self.armed_count += 1;
        }
        if s.has_event && s.event_at <= at {
            return;
        }
        // No wake pending, or it is too late: queue one for the new deadline
        // and invalidate any later wake via the generation counter.
        s.wake_gen = s.wake_gen.wrapping_add(1);
        s.has_event = true;
        s.event_at = at;
        let wake_gen = s.wake_gen;
        self.queue.push(at, EventKind::TimerWake { slot: h.0, wake_gen });
    }

    /// Cancels a slot timer. O(1): the slot is disarmed; any queued wake
    /// event becomes a no-op tombstone that drains with the clock.
    pub fn cancel_timer(&mut self, h: TimerHandle) {
        let s = &mut self.timers[h.0 as usize];
        if s.armed {
            s.armed = false;
            self.armed_count -= 1;
        }
    }

    /// Number of currently armed slot timers (diagnostics; lets tests pin
    /// that re-arming does not accumulate live timers).
    pub fn armed_timers(&self) -> u64 {
        self.armed_count
    }

    /// Injects a packet from `src` along `route` at the current time.
    /// Returns the assigned packet id.
    pub fn send_packet(
        &mut self,
        src: AgentId,
        route: Arc<Route>,
        size_bytes: u32,
        payload: Payload,
    ) -> u64 {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        let pkt = Packet {
            id,
            src,
            size_bytes,
            sent_at: self.now,
            ecn_ce: false,
            hop: 0,
            corrupted: false,
            route,
            payload,
        };
        if pkt.route.links.is_empty() {
            let agent = pkt.route.dst;
            let pkt = self.pool.stash(pkt);
            self.queue.push(self.now, EventKind::Deliver { agent, pkt });
        } else {
            let link = pkt.route.links[0];
            self.offer_to_link(link, pkt);
        }
        id
    }

    fn offer_to_link(&mut self, link: LinkId, pkt: Packet) {
        // Impairments act where the wire starts: a down link swallows the
        // packet outright, then the loss process rolls, and only survivors
        // reach the DropTail queue. `dropped_pkts` stays DropTail-only.
        let t_ns = self.now.as_nanos();
        let pkt_id = pkt.id;
        let l = &mut self.links[link];
        l.note_offered();
        if !l.is_up() {
            l.note_blackout_drop();
            self.blackout_drops += 1;
            self.emit(TraceEvent::Drop {
                t_ns,
                link: World::trace_link_id(link),
                pkt_id,
                cause: DropCause::Blackout,
            });
            return;
        }
        if l.roll_loss(&mut self.rng) {
            self.random_losses += 1;
            self.emit(TraceEvent::Drop {
                t_ns,
                link: World::trace_link_id(link),
                pkt_id,
                cause: DropCause::FaultLoss,
            });
            return;
        }
        let outcome = l.enqueue(pkt, self.now);
        let qlen = l.queue_len();
        match outcome {
            Enqueue::StartTx(ser) => {
                self.queue.push(self.now + ser, EventKind::LinkTxDone { link });
                self.emit(TraceEvent::Enqueue {
                    t_ns,
                    link: World::trace_link_id(link),
                    pkt_id,
                    qlen,
                });
            }
            Enqueue::Queued => {
                self.emit(TraceEvent::Enqueue {
                    t_ns,
                    link: World::trace_link_id(link),
                    pkt_id,
                    qlen,
                });
            }
            Enqueue::Dropped => {
                self.dropped_pkts += 1;
                self.emit(TraceEvent::Drop {
                    t_ns,
                    link: World::trace_link_id(link),
                    pkt_id,
                    cause: DropCause::QueueOverflow,
                });
            }
        }
    }

    /// Sets a link administratively up or down. Going down drains the link's
    /// queue (counted — and traced — as blackout drops, one per drained
    /// packet); a packet already in service completes its transmission and
    /// is forwarded.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered link.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        let drained = self.links[id].set_up(up, self.now);
        self.blackout_drops += drained.len() as u64;
        let t_ns = self.now.as_nanos();
        for pkt_id in drained {
            self.emit(TraceEvent::Drop {
                t_ns,
                link: World::trace_link_id(id),
                pkt_id,
                cause: DropCause::Blackout,
            });
        }
    }

    /// Applies one scripted fault action at the current time. This is the
    /// single entry point used by [`crate::faults::FaultScript`] agents and
    /// by drivers injecting faults between run calls.
    ///
    /// # Panics
    ///
    /// Panics if the action names an unregistered link.
    pub fn apply_fault(&mut self, action: &FaultAction) {
        let (affected, kind) = match action {
            FaultAction::SetLoss { link, model } => {
                self.links[*link].impairment_mut().set_loss(model.clone());
                (*link, FaultKind::SetLoss)
            }
            FaultAction::SetBandwidth { link, bps } => {
                self.links[*link].set_bandwidth(*bps);
                (*link, FaultKind::SetBandwidth)
            }
            FaultAction::SetPropagation { link, propagation } => {
                self.links[*link].set_propagation(*propagation);
                (*link, FaultKind::SetPropagation)
            }
            FaultAction::LinkDown { link } => {
                self.set_link_up(*link, false);
                (*link, FaultKind::LinkDown)
            }
            FaultAction::LinkUp { link } => {
                self.set_link_up(*link, true);
                (*link, FaultKind::LinkUp)
            }
            FaultAction::SetReorder { link, model } => {
                self.links[*link].impairment_mut().set_reorder(model.clone());
                (*link, FaultKind::SetReorder)
            }
            FaultAction::SetDuplicate { link, p } => {
                self.links[*link].impairment_mut().set_duplicate(*p);
                (*link, FaultKind::SetDuplicate)
            }
            FaultAction::SetCorrupt { link, p } => {
                self.links[*link].impairment_mut().set_corrupt(*p);
                (*link, FaultKind::SetCorrupt)
            }
        };
        self.emit(TraceEvent::Fault {
            t_ns: self.now.as_nanos(),
            link: World::trace_link_id(affected),
            kind,
        });
    }

    fn forward_after_tx(&mut self, link: LinkId, mut pkt: Packet) {
        // Delivery impairments roll in a fixed order — corrupt, duplicate,
        // jitter(original), jitter(duplicate) — so the RNG stream is a pure
        // function of the configured models; inactive models draw nothing,
        // which keeps fault-free runs byte-identical with or without this
        // machinery (pinned by faults::tests).
        let (prop, corrupt, duplicate, jitter, dup_jitter) = {
            let l = &mut self.links[link];
            let prop = l.config().propagation;
            let imp = l.impairment_mut();
            let corrupt = imp.roll_corrupt(&mut self.rng);
            let duplicate = imp.roll_duplicate(&mut self.rng);
            let jitter = imp.roll_reorder(&mut self.rng);
            let dup_jitter = if duplicate { imp.roll_reorder(&mut self.rng) } else { None };
            if corrupt {
                l.note_corrupted();
            }
            if duplicate {
                l.note_duplicated();
            }
            if jitter.is_some() {
                l.note_reordered();
            }
            if dup_jitter.is_some() {
                l.note_reordered();
            }
            (prop, corrupt, duplicate, jitter, dup_jitter)
        };
        let t_ns = self.now.as_nanos();
        if corrupt {
            pkt.corrupted = true;
            self.emit(TraceEvent::Impair {
                t_ns,
                link: World::trace_link_id(link),
                pkt_id: pkt.id,
                kind: ImpairKind::Corrupt,
            });
        }
        if duplicate {
            self.emit(TraceEvent::Impair {
                t_ns,
                link: World::trace_link_id(link),
                pkt_id: pkt.id,
                kind: ImpairKind::Duplicate,
            });
        }
        for _ in 0..(jitter.is_some() as usize + dup_jitter.is_some() as usize) {
            self.emit(TraceEvent::Impair {
                t_ns,
                link: World::trace_link_id(link),
                pkt_id: pkt.id,
                kind: ImpairKind::Reorder,
            });
        }
        pkt.hop += 1;
        let base = self.now + prop;
        let dup_copy = if duplicate { Some(pkt.clone()) } else { None };
        self.schedule_arrival(base + jitter.unwrap_or(SimDuration::ZERO), pkt);
        if let Some(copy) = dup_copy {
            // The copy inherits corruption (same bits on the wire twice) and
            // rolls its own jitter, so the two arrivals can land in either
            // order.
            self.schedule_arrival(base + dup_jitter.unwrap_or(SimDuration::ZERO), copy);
        }
    }

    /// Schedules one packet copy to arrive at `at`: delivered to the route's
    /// destination agent after the last hop, otherwise offered to the next
    /// link on the route.
    fn schedule_arrival(&mut self, at: SimTime, pkt: Packet) {
        if pkt.at_last_hop() {
            let agent = pkt.route.dst;
            let pkt = self.pool.stash(pkt);
            self.queue.push(at, EventKind::Deliver { agent, pkt });
        } else {
            let next = pkt.route.links[pkt.hop];
            let pkt = self.pool.stash(pkt);
            self.queue.push(at, EventKind::LinkEnqueue { link: next, pkt });
        }
    }

    /// Delivery batching: pops and returns the globally next event **only
    /// if** it is another delivery to `agent` at exactly the current time.
    /// Since such an event would be dispatched immediately after the current
    /// one anyway (the queue is drained in total `(time, seq)` order and
    /// nothing can be scheduled between two same-time events mid-dispatch),
    /// fusing it into the ongoing dispatch preserves semantics exactly while
    /// skipping an agent take/restore round-trip per coalesced packet.
    fn take_coalesced_delivery(&mut self, agent: AgentId) -> Option<Packet> {
        if !self.batch {
            return None;
        }
        let now = self.now;
        let ev = self.queue.pop_if(|e| {
            e.at == now && matches!(e.kind, EventKind::Deliver { agent: a, .. } if a == agent)
        })?;
        if let EventKind::Deliver { pkt, .. } = ev.kind {
            Some(self.pool.unstash(pkt))
        } else {
            debug_assert!(false, "pop_if predicate admitted a non-delivery");
            None
        }
    }
}

/// The per-callback handle agents use to interact with the simulation.
#[derive(Debug)]
pub struct Ctx<'a> {
    world: &'a mut World,
    self_id: AgentId,
}

impl Ctx<'_> {
    /// The id of the agent being called.
    pub fn self_id(&self) -> AgentId {
        self.self_id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The deterministic simulation RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.world.rng()
    }

    /// Sends a packet from this agent along `route`. Returns the packet id.
    pub fn send(&mut self, route: Arc<Route>, size_bytes: u32, payload: Payload) -> u64 {
        self.world.send_packet(self.self_id, route, size_bytes, payload)
    }

    /// Schedules `token` to fire back at this agent after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, token: u64) {
        self.world.schedule_in(self.self_id, delay, token);
    }

    /// Allocates a cancellable timer slot owned by this agent (see
    /// [`World::timer_slot`]).
    pub fn timer_slot(&mut self) -> TimerHandle {
        self.world.timer_slot(self.self_id)
    }

    /// (Re-)arms a slot timer (see [`World::arm_timer`]).
    pub fn arm_timer(&mut self, h: TimerHandle, delay: SimDuration, token: u64) {
        self.world.arm_timer(h, delay, token);
    }

    /// Cancels a slot timer (see [`World::cancel_timer`]).
    pub fn cancel_timer(&mut self, h: TimerHandle) {
        self.world.cancel_timer(h);
    }

    /// Read-only access to a link (e.g. to observe queue occupancy).
    pub fn link(&self, id: LinkId) -> &Link {
        self.world.link(id)
    }

    /// Applies one fault action at the current time (used by
    /// [`crate::faults::FaultScript`] agents).
    pub fn apply_fault(&mut self, action: &FaultAction) {
        self.world.apply_fault(action);
    }

    /// Records a trace event if a sink is installed (see [`World::emit`]).
    #[inline]
    pub fn emit(&mut self, ev: TraceEvent) {
        self.world.emit(ev);
    }

    /// Whether a trace sink is installed (see [`World::tracing`]).
    pub fn tracing(&self) -> bool {
        self.world.tracing()
    }
}

/// A watched agent that made no forward progress over a watchdog interval.
#[derive(Clone, Debug)]
pub struct StalledFlow {
    /// The agent that stalled.
    pub agent: AgentId,
    /// Its progress counter, unchanged since the previous check.
    pub progress: u64,
    /// The agent's [`Watched::diagnostics`] snapshot at detection time.
    pub diagnostics: String,
}

/// Diagnostic produced when the stall watchdog fires.
///
/// Instead of letting a livelocked simulation spin (or CI hang on a
/// wall-clock timeout), run loops abort and leave this report on the
/// simulator ([`Simulator::stall_report`]).
#[derive(Clone, Debug)]
pub struct StallReport {
    /// Simulated time of detection.
    pub at: SimTime,
    /// Every watched, in-flight agent whose progress did not advance.
    pub stalled: Vec<StalledFlow>,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "stall watchdog fired at t={:.3}s: {} flow(s) made no progress",
            self.at.as_secs_f64(),
            self.stalled.len()
        )?;
        for s in &self.stalled {
            writeln!(f, "  agent {} (progress={}): {}", s.agent, s.progress, s.diagnostics)?;
        }
        Ok(())
    }
}

/// Internal watchdog state (see [`Simulator::enable_watchdog`]).
#[derive(Debug)]
struct Watchdog {
    interval: SimDuration,
    next_check: SimTime,
    watched: Vec<AgentId>,
    /// Progress at the previous check, per watched agent; `None` when the
    /// agent was not in flight then (no stall comparison across idle spans).
    last: Vec<Option<u64>>,
    report: Option<StallReport>,
}

/// The simulator: links + agents + event loop.
pub struct Simulator {
    world: World,
    agents: Vec<Option<Box<dyn Agent>>>,
    watchdog: Option<Watchdog>,
    /// Online invariant checks, run after every processed event. Compiled
    /// out entirely without the `check-invariants` feature.
    #[cfg(feature = "check-invariants")]
    checks: Vec<crate::check::InvariantCheck>,
    /// First invariant violation observed; run loops halt once set.
    #[cfg(feature = "check-invariants")]
    violation: Option<crate::check::InvariantViolation>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.world.now)
            .field("links", &self.world.links.len())
            .field("agents", &self.agents.len())
            .field("pending_events", &self.world.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with the given RNG seed and the default
    /// (fast) engine.
    pub fn new(seed: u64) -> Self {
        Simulator::with_engine(seed, EngineConfig::default())
    }

    /// Creates an empty simulator on an explicit [`EngineConfig`]. Every
    /// engine produces byte-identical runs; non-default configurations exist
    /// for the identity pins and for benchmarking the fast path against the
    /// reference.
    pub fn with_engine(seed: u64, engine: EngineConfig) -> Self {
        Simulator {
            world: World::new(seed, engine),
            agents: Vec::new(),
            watchdog: None,
            #[cfg(feature = "check-invariants")]
            checks: Vec::new(),
            #[cfg(feature = "check-invariants")]
            violation: None,
        }
    }

    /// Registers a link and returns its id.
    pub fn add_link(&mut self, cfg: LinkConfig) -> LinkId {
        self.world.links.push(Link::new(cfg));
        self.world.links.len() - 1
    }

    /// Registers an agent and returns its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        self.agents.push(Some(agent));
        self.agents.len() - 1
    }

    /// Registers an agent built from its own id (for agents that must embed
    /// their address in packets they send).
    pub fn add_agent_with<F>(&mut self, build: F) -> AgentId
    where
        F: FnOnce(AgentId) -> Box<dyn Agent>,
    {
        let id = self.agents.len();
        self.agents.push(Some(build(id)));
        id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Shared state (links, clock, RNG).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable shared state, for experiment setup (packet injection, timer
    /// kicks).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Typed access to an agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown, the agent is mid-dispatch, or `T` is not its
    /// concrete type.
    pub fn agent<T: Agent>(&self, id: AgentId) -> &T {
        // simlint: allow(P001, documented panic: typed agent access is a test/setup API whose misuse is a caller bug, not a runtime condition)
        let a = self.agents[id].as_ref().expect("agent is mid-dispatch");
        // simlint: allow(P001, documented panic: see above — the downcast encodes the caller-supplied type)
        (&**a as &dyn Any).downcast_ref::<T>().expect("agent type mismatch")
    }

    /// Typed mutable access to an agent.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::agent`].
    pub fn agent_mut<T: Agent>(&mut self, id: AgentId) -> &mut T {
        // simlint: allow(P001, documented panic: typed agent access is a test/setup API whose misuse is a caller bug, not a runtime condition)
        let a = self.agents[id].as_mut().expect("agent is mid-dispatch");
        // simlint: allow(P001, documented panic: see above — the downcast encodes the caller-supplied type)
        (&mut **a as &mut dyn Any).downcast_mut::<T>().expect("agent type mismatch")
    }

    /// Schedules a timer for `agent` after `delay` from now. The conventional
    /// way to start protocol agents (token 0 as the "go" signal).
    pub fn kick(&mut self, agent: AgentId, delay: SimDuration, token: u64) {
        self.world.schedule_in(agent, delay, token);
    }

    /// Installs a trace sink (see [`World::set_trace_sink`]).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.world.set_trace_sink(sink);
    }

    /// Detaches and flushes the trace sink (see [`World::take_trace_sink`]).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.world.take_trace_sink()
    }

    fn dispatch(&mut self, agent: AgentId, f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>)) {
        // simlint: allow(P001, invariant: dispatch is never reentrant — the event loop is single-threaded and agents cannot trigger dispatch from within dispatch)
        let mut a = self.agents[agent].take().expect("reentrant agent dispatch");
        {
            let mut ctx = Ctx { world: &mut self.world, self_id: agent };
            f(a.as_mut(), &mut ctx);
        }
        self.agents[agent] = Some(a);
    }

    /// Enables the stall watchdog: every `interval` of simulated time, each
    /// agent registered with [`Simulator::watch`] is checked for forward
    /// progress. If any watched, in-flight agent's [`Watched::progress`] did
    /// not advance over a whole interval, run loops abort and
    /// [`Simulator::stall_report`] describes the stall. Pick an interval
    /// comfortably longer than the worst legitimate silence (backed-off RTOs,
    /// scripted blackouts).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn enable_watchdog(&mut self, interval: SimDuration) {
        assert!(interval > SimDuration::ZERO, "watchdog interval must be positive");
        self.watchdog = Some(Watchdog {
            interval,
            next_check: self.world.now + interval,
            watched: Vec::new(),
            last: Vec::new(),
            report: None,
        });
    }

    /// Registers `agent` with the stall watchdog. The agent must implement
    /// [`Agent::watched`]; unmonitorable agents are ignored at check time.
    ///
    /// # Panics
    ///
    /// Panics if the watchdog is not enabled.
    pub fn watch(&mut self, agent: AgentId) {
        // simlint: allow(P001, documented panic: watch() without enable_watchdog() is a setup-order bug surfaced at configuration time)
        let wd = self.watchdog.as_mut().expect("enable_watchdog before watch");
        wd.watched.push(agent);
        wd.last.push(None);
    }

    /// The stall report, if the watchdog has fired.
    pub fn stall_report(&self) -> Option<&StallReport> {
        self.watchdog.as_ref().and_then(|wd| wd.report.as_ref())
    }

    /// Whether the watchdog has fired (run loops refuse to continue).
    pub fn stalled(&self) -> bool {
        self.stall_report().is_some()
    }

    /// Registers an online invariant check, run against the simulator after
    /// every processed event. The first check to return `Err` records an
    /// [`crate::check::InvariantViolation`] and halts all run loops.
    #[cfg(feature = "check-invariants")]
    pub fn add_invariant_check(&mut self, check: crate::check::InvariantCheck) {
        self.checks.push(check);
    }

    /// The recorded invariant violation, if any check has failed.
    #[cfg(feature = "check-invariants")]
    pub fn invariant_violation(&self) -> Option<&crate::check::InvariantViolation> {
        self.violation.as_ref()
    }

    /// Whether an invariant violation has halted the simulator. Always
    /// `false` without the `check-invariants` feature.
    pub fn invariant_halted(&self) -> bool {
        #[cfg(feature = "check-invariants")]
        {
            self.violation.is_some()
        }
        #[cfg(not(feature = "check-invariants"))]
        {
            false
        }
    }

    /// Runs every registered invariant check; records the first failure and
    /// returns `false` on (new or prior) violation. A no-op returning `true`
    /// without the feature.
    fn invariants_ok(&mut self) -> bool {
        #[cfg(feature = "check-invariants")]
        {
            if self.violation.is_some() {
                return false;
            }
            if self.checks.is_empty() {
                return true;
            }
            // Checks take `&Simulator`, so lift them out for the duration.
            let mut checks = std::mem::take(&mut self.checks);
            let mut failed = None;
            for c in checks.iter_mut() {
                if let Err(message) = c(self) {
                    failed = Some(message);
                    break;
                }
            }
            self.checks = checks;
            if let Some(message) = failed {
                self.violation =
                    Some(crate::check::InvariantViolation { at: self.world.now, message });
                return false;
            }
        }
        true
    }

    /// Runs one watchdog check at the current clock. Declares a stall when a
    /// watched agent was in flight at both this check and the previous one
    /// without its progress counter moving.
    fn watchdog_check(&mut self) {
        let Some(wd) = &mut self.watchdog else { return };
        let mut stalled = Vec::new();
        for (i, &id) in wd.watched.iter().enumerate() {
            let snapshot = self.agents[id]
                .as_ref()
                .and_then(|a| a.watched())
                .map(|w| (w.progress(), w.in_flight(), w.diagnostics()));
            let Some((progress, in_flight, diagnostics)) = snapshot else {
                wd.last[i] = None;
                continue;
            };
            if in_flight && wd.last[i] == Some(progress) {
                stalled.push(StalledFlow { agent: id, progress, diagnostics });
            }
            wd.last[i] = in_flight.then_some(progress);
        }
        if !stalled.is_empty() {
            wd.report = Some(StallReport { at: self.world.now, stalled });
        }
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty or the stall watchdog has fired.
    pub fn step(&mut self) -> bool {
        // Run any watchdog checks due before the next event, at their own
        // simulated times. Agent state only changes at events, so checking on
        // these boundaries observes exactly what a timer-driven check would.
        while let Some(check_at) = self.watchdog.as_ref().and_then(|wd| {
            let due_before_event = match self.world.queue.peek_time() {
                Some(t) => wd.next_check <= t,
                None => false,
            };
            (wd.report.is_none() && due_before_event).then_some(wd.next_check)
        }) {
            if check_at > self.world.now {
                self.world.now = check_at;
            }
            self.watchdog_check();
            // simlint: allow(P001, invariant: the loop condition just observed Some(watchdog) and nothing in between can clear it)
            let wd = self.watchdog.as_mut().expect("watchdog vanished mid-check");
            wd.next_check = check_at + wd.interval;
        }
        if self.stalled() || self.invariant_halted() {
            return false;
        }
        let Some(ev) = self.world.queue.pop() else { return false };
        debug_assert!(ev.at >= self.world.now, "event queue went backwards");
        self.world.now = ev.at;
        match ev.kind {
            EventKind::Deliver { agent, pkt } => {
                let pkt = self.world.pool.unstash(pkt);
                self.dispatch(agent, |a, ctx| {
                    a.on_packet(pkt, ctx);
                    // Fuse immediately-following same-time deliveries to the
                    // same agent into this dispatch (ACK batching); see
                    // World::take_coalesced_delivery for why this preserves
                    // event order exactly.
                    while let Some(next) = ctx.world.take_coalesced_delivery(agent) {
                        a.on_packet(next, ctx);
                    }
                });
            }
            EventKind::Timer { agent, token } => {
                self.dispatch(agent, |a, ctx| a.on_timer(token, ctx));
            }
            EventKind::TimerWake { slot, wake_gen } => {
                let s = &mut self.world.timers[slot as usize];
                if s.wake_gen == wake_gen {
                    s.has_event = false;
                    if s.armed && s.deadline <= self.world.now {
                        s.armed = false;
                        self.world.armed_count -= 1;
                        let (agent, token) = (s.agent, s.token);
                        self.dispatch(agent, |a, ctx| a.on_timer(token, ctx));
                    } else if s.armed {
                        // Deadline moved later since this wake was queued
                        // (deferred re-arm): sleep again until the live one.
                        s.wake_gen = s.wake_gen.wrapping_add(1);
                        s.has_event = true;
                        s.event_at = s.deadline;
                        let (at, wake_gen) = (s.deadline, s.wake_gen);
                        self.world.queue.push(at, EventKind::TimerWake { slot, wake_gen });
                    }
                }
            }
            EventKind::LinkTxDone { link } => {
                let (pkt, next) = self.world.links[link].tx_done(self.world.now);
                if let Some(ser) = next {
                    self.world.queue.push(self.world.now + ser, EventKind::LinkTxDone { link });
                }
                self.world.forward_after_tx(link, pkt);
            }
            EventKind::LinkEnqueue { link, pkt } => {
                let pkt = self.world.pool.unstash(pkt);
                self.world.offer_to_link(link, pkt);
            }
        }
        self.invariants_ok()
    }

    /// Runs until the event queue is exhausted, `deadline` is reached, or the
    /// stall watchdog fires, whichever comes first. The clock ends at exactly
    /// `deadline` if it was reached; on a stall it stays at detection time.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.world.queue.peek_time() {
            if t > deadline {
                break;
            }
            if !self.step() {
                break;
            }
        }
        if self.world.now < deadline && !self.stalled() && !self.invariant_halted() {
            self.world.now = deadline;
        }
    }

    /// Runs for `dur` of simulated time from the current clock.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.world.now + dur;
        self.run_until(deadline);
    }

    /// Runs until no events remain or the stall watchdog fires (only safe for
    /// workloads that terminate).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.world.queue.len()
    }

    /// Number of currently armed slot timers (see [`World::armed_timers`]).
    /// O(1); lets tests pin that re-arming is state mutation, not event
    /// traffic.
    pub fn armed_timers(&self) -> u64 {
        self.world.armed_timers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Sink {
        received: Vec<(SimTime, u64)>,
        timers: Vec<u64>,
    }

    impl Sink {
        fn new() -> Self {
            Self::default()
        }
    }

    impl Agent for Sink {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            self.received.push((ctx.now(), pkt.id));
        }
        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
            self.timers.push(token);
        }
    }

    /// Echoes every packet straight back along a reverse route.
    struct Echo {
        reverse: Arc<Route>,
    }

    impl Agent for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            ctx.send(self.reverse.clone(), pkt.size_bytes, Payload::Raw);
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    #[test]
    fn packet_delivery_timing_includes_serialization_and_propagation() {
        let mut sim = Simulator::new(1);
        // 1 Mb/s, 10 ms propagation: 1250 B => 10 ms serialization.
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::from_millis(10)));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l], sink);
        sim.world_mut().send_packet(sink, route, 1250, Payload::Raw);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let got = &sim.agent::<Sink>(sink).received;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, ms(20));
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_nanos(v * 1_000_000)
    }

    #[test]
    fn two_hop_route_store_and_forward() {
        let mut sim = Simulator::new(1);
        let l1 = sim.add_link(LinkConfig::new(1_000_000, SimDuration::from_millis(5)));
        let l2 = sim.add_link(LinkConfig::new(1_000_000, SimDuration::from_millis(5)));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l1, l2], sink);
        sim.world_mut().send_packet(sink, route, 1250, Payload::Raw);
        sim.run_until(SimTime::from_secs_f64(1.0));
        // 10 ms ser + 5 ms prop + 10 ms ser + 5 ms prop = 30 ms.
        assert_eq!(sim.agent::<Sink>(sink).received[0].0, ms(30));
    }

    #[test]
    fn round_trip_through_echo_agent() {
        let mut sim = Simulator::new(1);
        let fwd = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(1)));
        let back = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(1)));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let echo = sim.add_agent(Box::new(Echo { reverse: Route::new(vec![back], sink) }));
        let route = Route::new(vec![fwd], echo);
        sim.world_mut().send_packet(sink, route, 125, Payload::Raw);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Sink>(sink).received.len(), 1);
        // 0.1 ms ser + 1 ms prop each way = 2.2 ms total.
        let t = sim.agent::<Sink>(sink).received[0].0;
        assert_eq!(t, SimTime::from_nanos(2_200_000));
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_agent(Box::new(Sink::new()));
        sim.kick(sink, SimDuration::from_millis(2), 20);
        sim.kick(sink, SimDuration::from_millis(1), 10);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Sink>(sink).timers, vec![10, 20]);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn droptail_losses_are_counted_globally() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::ZERO).queue_limit(1));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l], sink);
        for _ in 0..5 {
            sim.world_mut().send_packet(sink, route.clone(), 1250, Payload::Raw);
        }
        sim.run_until(SimTime::from_secs_f64(1.0));
        // 1 in service + 1 queued survive; 3 dropped.
        assert_eq!(sim.world().dropped_pkts, 3);
        assert_eq!(sim.agent::<Sink>(sink).received.len(), 2);
    }

    #[test]
    fn iid_loss_drops_packets_and_counts_them() {
        use crate::faults::LossModel;
        let mut sim = Simulator::new(11);
        let l = sim.add_link(LinkConfig::new(10_000_000, SimDuration::ZERO));
        sim.world_mut().link_mut(l).impairment_mut().set_loss(LossModel::iid(0.5));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l], sink);
        for _ in 0..200 {
            sim.world_mut().send_packet(sink, route.clone(), 100, Payload::Raw);
        }
        sim.run_to_completion();
        let lost = sim.world().random_losses;
        let got = sim.agent::<Sink>(sink).received.len() as u64;
        assert_eq!(lost + got, 200);
        assert_eq!(sim.world().link(l).stats().random_losses, lost);
        assert!((50..150).contains(&lost), "p=0.5 lost {lost}/200");
        // Random losses are not DropTail drops.
        assert_eq!(sim.world().dropped_pkts, 0);
    }

    #[test]
    fn link_down_drains_queue_and_blocks_offers() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::ZERO));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l], sink);
        // One in service + three queued.
        for _ in 0..4 {
            sim.world_mut().send_packet(sink, route.clone(), 1250, Payload::Raw);
        }
        sim.world_mut().set_link_up(l, false);
        assert_eq!(sim.world().blackout_drops, 3, "queue drained on going down");
        // Offers while down are swallowed.
        sim.world_mut().send_packet(sink, route.clone(), 1250, Payload::Raw);
        assert_eq!(sim.world().blackout_drops, 4);
        sim.run_to_completion();
        // Only the packet already in service got through.
        assert_eq!(sim.agent::<Sink>(sink).received.len(), 1);
        sim.world_mut().set_link_up(l, true);
        sim.world_mut().send_packet(sink, route, 1250, Payload::Raw);
        sim.run_to_completion();
        assert_eq!(sim.agent::<Sink>(sink).received.len(), 2);
        assert_eq!(sim.world().link(l).stats().blackout_drops, 4);
    }

    #[test]
    fn trace_records_drops_with_causes() {
        use crate::faults::LossModel;
        use std::sync::{Arc, Mutex};
        let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulator::new(7);
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::ZERO).queue_limit(1));
        let sink = sim.add_agent(Box::new(Sink::new()));
        sim.set_trace_sink(Box::new(events.clone()));
        let route = Route::new(vec![l], sink);
        // 1 in service + 1 queued + 1 DropTail overflow.
        for _ in 0..3 {
            sim.world_mut().send_packet(sink, route.clone(), 1250, Payload::Raw);
        }
        // Going down drains the queued packet (blackout); an offer while down
        // is also a blackout drop.
        sim.world_mut().set_link_up(l, false);
        sim.world_mut().send_packet(sink, route.clone(), 1250, Payload::Raw);
        sim.world_mut().set_link_up(l, true);
        // Certain loss consumes the next offer as a fault loss.
        sim.world_mut().link_mut(l).impairment_mut().set_loss(LossModel::iid(1.0));
        sim.world_mut().send_packet(sink, route.clone(), 1250, Payload::Raw);
        sim.run_to_completion();
        let evs = events.lock().unwrap().clone();
        let drops = |cause: DropCause| {
            evs.iter()
                .filter(|e| matches!(e, TraceEvent::Drop { cause: c, .. } if *c == cause))
                .count()
        };
        assert_eq!(drops(DropCause::QueueOverflow), 1);
        assert_eq!(drops(DropCause::Blackout), 2);
        assert_eq!(drops(DropCause::FaultLoss), 1);
        let enqueues = evs.iter().filter(|e| matches!(e, TraceEvent::Enqueue { .. })).count();
        assert_eq!(enqueues, 2);
        // Counters agree with the trace without requiring it.
        let counters = sim.world().link_counters();
        assert_eq!(counters[l].drops_queue, 1);
        assert_eq!(counters[l].drops_blackout, 2);
        assert_eq!(counters[l].drops_fault, 1);
        assert_eq!(counters[l].drops(), 4);
        // The sink detaches cleanly.
        assert!(sim.take_trace_sink().is_some());
        assert!(!sim.world().tracing());
    }

    #[test]
    fn fault_script_applies_events_in_time_order() {
        use crate::faults::{FaultAction, FaultScript};
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::ZERO));
        // Deliberately inserted out of order.
        FaultScript::new()
            .at(SimTime::from_secs_f64(2.0), FaultAction::SetBandwidth { link: l, bps: 3_000_000 })
            .at(SimTime::from_secs_f64(1.0), FaultAction::SetBandwidth { link: l, bps: 2_000_000 })
            .blackout(l, SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(4.0))
            .install(&mut sim);
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert_eq!(sim.world().link(l).config().bandwidth_bps, 2_000_000);
        sim.run_until(SimTime::from_secs_f64(2.5));
        assert_eq!(sim.world().link(l).config().bandwidth_bps, 3_000_000);
        sim.run_until(SimTime::from_secs_f64(3.5));
        assert!(!sim.world().link(l).is_up());
        sim.run_until(SimTime::from_secs_f64(4.5));
        assert!(sim.world().link(l).is_up());
    }

    /// An agent that keeps rescheduling a timer but never makes progress.
    struct Livelock {
        progress: u64,
    }

    impl Agent for Livelock {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
            ctx.schedule_in(SimDuration::from_millis(100), token);
        }
        fn watched(&self) -> Option<&dyn Watched> {
            Some(self)
        }
    }

    impl Watched for Livelock {
        fn progress(&self) -> u64 {
            self.progress
        }
        fn in_flight(&self) -> bool {
            true
        }
        fn diagnostics(&self) -> String {
            "livelocked test agent".into()
        }
    }

    #[test]
    fn watchdog_aborts_livelocked_run_with_report() {
        let mut sim = Simulator::new(1);
        let a = sim.add_agent(Box::new(Livelock { progress: 0 }));
        sim.enable_watchdog(SimDuration::from_secs_f64(1.0));
        sim.watch(a);
        sim.kick(a, SimDuration::from_millis(100), 0);
        // Without the watchdog this would loop for the full horizon.
        sim.run_until(SimTime::from_secs_f64(1_000_000.0));
        let report = sim.stall_report().expect("watchdog must fire");
        // First check (t=1s) primes the baseline; second (t=2s) detects.
        assert_eq!(report.at, SimTime::from_secs_f64(2.0));
        assert_eq!(report.stalled.len(), 1);
        assert_eq!(report.stalled[0].agent, a);
        assert!(report.to_string().contains("livelocked test agent"));
        assert!(sim.now() < SimTime::from_secs_f64(3.0), "run aborted at detection");
    }

    #[test]
    fn watchdog_stays_quiet_for_progressing_flows() {
        // A sender that drips packets to a sink forever: progress advances
        // every interval, so the watchdog must never fire.
        struct Dripper {
            sent: u64,
            route: Arc<Route>,
        }
        impl Agent for Dripper {
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
                self.sent += 1;
                ctx.send(self.route.clone(), 100, Payload::Raw);
                if self.sent < 50 {
                    ctx.schedule_in(SimDuration::from_millis(500), token);
                }
            }
            fn watched(&self) -> Option<&dyn Watched> {
                Some(self)
            }
        }
        impl Watched for Dripper {
            fn progress(&self) -> u64 {
                self.sent
            }
            fn in_flight(&self) -> bool {
                self.sent < 50
            }
            fn diagnostics(&self) -> String {
                format!("sent={}", self.sent)
            }
        }
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::ZERO));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l], sink);
        let d = sim.add_agent(Box::new(Dripper { sent: 0, route }));
        sim.enable_watchdog(SimDuration::from_secs_f64(2.0));
        sim.watch(d);
        sim.kick(d, SimDuration::ZERO, 0);
        sim.run_until(SimTime::from_secs_f64(60.0));
        assert!(sim.stall_report().is_none());
        assert_eq!(sim.agent::<Sink>(sink).received.len(), 50);
    }

    #[test]
    fn simulator_is_send() {
        // The sweep runner moves whole simulators across worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
        assert_send::<World>();
    }

    /// An agent that re-arms a single cancellable timer on every packet, the
    /// way a transport re-arms its RTO on every ACK.
    struct Rearmer {
        handle: Option<TimerHandle>,
        rearms: u64,
        fired: Vec<u64>,
    }

    impl Agent for Rearmer {
        fn on_packet(&mut self, _pkt: Packet, ctx: &mut Ctx<'_>) {
            let h = *self.handle.get_or_insert_with(|| ctx.timer_slot());
            self.rearms += 1;
            ctx.arm_timer(h, SimDuration::from_millis(300), self.rearms);
        }
        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
            self.fired.push(token);
        }
    }

    #[test]
    fn rearmed_1000_times_leaves_o1_live_timer_state() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(
            LinkConfig::new(1_000_000_000, SimDuration::from_micros(5)).queue_limit(1200),
        );
        let a = sim.add_agent(Box::new(Rearmer { handle: None, rearms: 0, fired: Vec::new() }));
        let route = Route::new(vec![l], a);
        for _ in 0..1000 {
            sim.world_mut().send_packet(a, route.clone(), 1500, Payload::Raw);
        }
        // Deliver all packets; each re-arms the RTO-style timer.
        sim.run_until(SimTime::from_secs_f64(0.1));
        assert_eq!(sim.agent::<Rearmer>(a).rearms, 1000);
        assert_eq!(sim.world().armed_timers(), 1, "exactly one live timer after 1000 re-arms");
        // The deferred-wake scheme leaves O(1) events, not one per re-arm.
        assert!(
            sim.pending_events() <= 2,
            "{} timer events accumulated in the queue",
            sim.pending_events()
        );
        // And the timer still fires exactly once, at the *last* armed
        // deadline, with the last token.
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Rearmer>(a).fired, vec![1000]);
        assert_eq!(sim.world().armed_timers(), 0);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        struct Canceller {
            handle: Option<TimerHandle>,
            fired: u64,
        }
        impl Agent for Canceller {
            fn on_packet(&mut self, _pkt: Packet, ctx: &mut Ctx<'_>) {
                match self.handle {
                    None => {
                        let h = ctx.timer_slot();
                        self.handle = Some(h);
                        ctx.arm_timer(h, SimDuration::from_millis(10), 7);
                    }
                    Some(h) => ctx.cancel_timer(h),
                }
            }
            fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {
                self.fired += 1;
            }
        }
        let mut sim = Simulator::new(1);
        let a = sim.add_agent(Box::new(Canceller { handle: None, fired: 0 }));
        let route = Route::direct(a);
        sim.world_mut().send_packet(a, route.clone(), 100, Payload::Raw); // arm
        sim.world_mut().send_packet(a, route.clone(), 100, Payload::Raw); // cancel
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Canceller>(a).fired, 0);
        assert_eq!(sim.world().armed_timers(), 0);
        // Re-arming after a cancel works.
        sim.agent_mut::<Canceller>(a).handle = None;
        sim.world_mut().send_packet(a, route, 100, Payload::Raw);
        sim.run_to_completion();
        assert_eq!(sim.agent::<Canceller>(a).fired, 1);
    }

    /// The engine matrix produces identical results at the simulator level:
    /// wheel vs heap, pooled vs boxed, batched vs unbatched.
    #[test]
    fn engine_configs_agree_on_delivery_schedule() {
        fn run(engine: EngineConfig) -> Vec<(SimTime, u64)> {
            let mut sim = Simulator::with_engine(99, engine);
            let l = sim.add_link(LinkConfig::new(5_000_000, SimDuration::from_micros(100)));
            let sink = sim.add_agent(Box::new(Sink::new()));
            let route = Route::new(vec![l], sink);
            for _ in 0..50 {
                sim.world_mut().send_packet(sink, route.clone(), 1500, Payload::Raw);
            }
            sim.run_until(SimTime::from_secs_f64(1.0));
            sim.agent::<Sink>(sink).received.clone()
        }
        let reference = run(EngineConfig::reference());
        for queue in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
            for pool_packets in [false, true] {
                for batch_acks in [false, true] {
                    let cfg = EngineConfig { queue, pool_packets, batch_acks };
                    assert_eq!(run(cfg), reference, "engine {cfg:?} diverged");
                }
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run() -> Vec<(SimTime, u64)> {
            let mut sim = Simulator::new(99);
            let l = sim.add_link(LinkConfig::new(5_000_000, SimDuration::from_micros(100)));
            let sink = sim.add_agent(Box::new(Sink::new()));
            let route = Route::new(vec![l], sink);
            for _ in 0..50 {
                sim.world_mut().send_packet(sink, route.clone(), 1500, Payload::Raw);
            }
            sim.run_until(SimTime::from_secs_f64(1.0));
            sim.agent::<Sink>(sink).received.clone()
        }
        assert_eq!(run(), run());
    }
}
