//! The discrete-event simulator core.
//!
//! A [`Simulator`] owns a set of [`Link`]s, a set of [`Agent`]s (protocol
//! endpoints and traffic sources), and a monotonic event queue. It is strictly
//! single-threaded and deterministic: given the same topology, agents, and
//! seed, two runs produce bit-identical results.
//!
//! # Examples
//!
//! ```
//! use netsim::prelude::*;
//!
//! /// An agent that counts delivered packets.
//! #[derive(Default)]
//! struct Counter { received: u64 }
//!
//! impl Agent for Counter {
//!     fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) { self.received += 1; }
//!     fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
//! }
//!
//! let mut sim = Simulator::new(42);
//! let link = sim.add_link(LinkConfig::new(1_000_000, SimDuration::from_millis(1)));
//! let sink = sim.add_agent(Box::new(Counter::default()));
//! let route = Route::new(vec![link], sink);
//! sim.world_mut().send_packet(sink, route, 125, Payload::Raw);
//! sim.run_until(SimTime::from_secs_f64(1.0));
//! assert_eq!(sim.agent::<Counter>(sink).received, 1);
//! ```

use crate::event::{EventKind, EventQueue};
use crate::link::{Enqueue, Link, LinkConfig};
use crate::packet::{AgentId, LinkId, Packet, Payload, Route};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::sync::Arc;

/// A protocol endpoint or traffic source/sink driven by the simulator.
///
/// Agents receive packets addressed to them and timer callbacks they have
/// scheduled. All interaction with the network goes through the [`Ctx`]
/// passed to each callback.
pub trait Agent: Any {
    /// Called when a packet whose route terminates at this agent is delivered.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);
    /// Called when a timer scheduled by this agent fires. `token` is the value
    /// passed to [`Ctx::schedule_in`]; agents use it to distinguish and to
    /// invalidate stale timers.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>);
}

/// Shared simulation state: links, clock, event queue, RNG.
///
/// Exposed to agents through [`Ctx`] and to experiment drivers through
/// [`Simulator::world`] / [`Simulator::world_mut`].
#[derive(Debug)]
pub struct World {
    now: SimTime,
    links: Vec<Link>,
    queue: EventQueue,
    rng: SmallRng,
    next_pkt_id: u64,
    /// Total packets dropped by DropTail across all links.
    pub dropped_pkts: u64,
}

impl World {
    fn new(seed: u64) -> Self {
        World {
            now: SimTime::ZERO,
            links: Vec::new(),
            queue: EventQueue::new(),
            rng: SmallRng::seed_from_u64(seed),
            next_pkt_id: 0,
            dropped_pkts: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The deterministic simulation RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Immutable access to a link.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id]
    }

    /// Mutable access to a link, for mid-run degradation or failure
    /// injection between [`crate::sim::Simulator::run_until`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id]
    }

    /// Number of registered links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Schedules `token` to fire at `agent` after `delay`.
    pub fn schedule_in(&mut self, agent: AgentId, delay: SimDuration, token: u64) {
        self.queue.push(self.now + delay, EventKind::Timer { agent, token });
    }

    /// Injects a packet from `src` along `route` at the current time.
    /// Returns the assigned packet id.
    pub fn send_packet(
        &mut self,
        src: AgentId,
        route: Arc<Route>,
        size_bytes: u32,
        payload: Payload,
    ) -> u64 {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        let pkt = Packet {
            id,
            src,
            size_bytes,
            sent_at: self.now,
            ecn_ce: false,
            hop: 0,
            route,
            payload,
        };
        if pkt.route.links.is_empty() {
            let agent = pkt.route.dst;
            self.queue.push(self.now, EventKind::Deliver { agent, pkt });
        } else {
            let link = pkt.route.links[0];
            self.offer_to_link(link, pkt);
        }
        id
    }

    fn offer_to_link(&mut self, link: LinkId, pkt: Packet) {
        match self.links[link].enqueue(pkt, self.now) {
            Enqueue::StartTx(ser) => {
                self.queue.push(self.now + ser, EventKind::LinkTxDone { link });
            }
            Enqueue::Queued => {}
            Enqueue::Dropped => {
                self.dropped_pkts += 1;
            }
        }
    }

    fn forward_after_tx(&mut self, link: LinkId, mut pkt: Packet) {
        let prop = self.links[link].config().propagation;
        pkt.hop += 1;
        let arrival = self.now + prop;
        if pkt.at_last_hop() {
            let agent = pkt.route.dst;
            self.queue.push(arrival, EventKind::Deliver { agent, pkt });
        } else {
            let next = pkt.route.links[pkt.hop];
            self.queue.push(arrival, EventKind::LinkEnqueue { link: next, pkt });
        }
    }
}

/// The per-callback handle agents use to interact with the simulation.
#[derive(Debug)]
pub struct Ctx<'a> {
    world: &'a mut World,
    self_id: AgentId,
}

impl Ctx<'_> {
    /// The id of the agent being called.
    pub fn self_id(&self) -> AgentId {
        self.self_id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The deterministic simulation RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.world.rng()
    }

    /// Sends a packet from this agent along `route`. Returns the packet id.
    pub fn send(&mut self, route: Arc<Route>, size_bytes: u32, payload: Payload) -> u64 {
        self.world.send_packet(self.self_id, route, size_bytes, payload)
    }

    /// Schedules `token` to fire back at this agent after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, token: u64) {
        self.world.schedule_in(self.self_id, delay, token);
    }

    /// Read-only access to a link (e.g. to observe queue occupancy).
    pub fn link(&self, id: LinkId) -> &Link {
        self.world.link(id)
    }
}

/// The simulator: links + agents + event loop.
pub struct Simulator {
    world: World,
    agents: Vec<Option<Box<dyn Agent>>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.world.now)
            .field("links", &self.world.links.len())
            .field("agents", &self.agents.len())
            .field("pending_events", &self.world.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator { world: World::new(seed), agents: Vec::new() }
    }

    /// Registers a link and returns its id.
    pub fn add_link(&mut self, cfg: LinkConfig) -> LinkId {
        self.world.links.push(Link::new(cfg));
        self.world.links.len() - 1
    }

    /// Registers an agent and returns its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        self.agents.push(Some(agent));
        self.agents.len() - 1
    }

    /// Registers an agent built from its own id (for agents that must embed
    /// their address in packets they send).
    pub fn add_agent_with<F>(&mut self, build: F) -> AgentId
    where
        F: FnOnce(AgentId) -> Box<dyn Agent>,
    {
        let id = self.agents.len();
        self.agents.push(Some(build(id)));
        id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Shared state (links, clock, RNG).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable shared state, for experiment setup (packet injection, timer
    /// kicks).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Typed access to an agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown, the agent is mid-dispatch, or `T` is not its
    /// concrete type.
    pub fn agent<T: Agent>(&self, id: AgentId) -> &T {
        let a = self.agents[id].as_ref().expect("agent is mid-dispatch");
        (&**a as &dyn Any).downcast_ref::<T>().expect("agent type mismatch")
    }

    /// Typed mutable access to an agent.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::agent`].
    pub fn agent_mut<T: Agent>(&mut self, id: AgentId) -> &mut T {
        let a = self.agents[id].as_mut().expect("agent is mid-dispatch");
        (&mut **a as &mut dyn Any).downcast_mut::<T>().expect("agent type mismatch")
    }

    /// Schedules a timer for `agent` after `delay` from now. The conventional
    /// way to start protocol agents (token 0 as the "go" signal).
    pub fn kick(&mut self, agent: AgentId, delay: SimDuration, token: u64) {
        self.world.schedule_in(agent, delay, token);
    }

    fn dispatch(&mut self, agent: AgentId, f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>)) {
        let mut a = self.agents[agent].take().expect("reentrant agent dispatch");
        {
            let mut ctx = Ctx { world: &mut self.world, self_id: agent };
            f(a.as_mut(), &mut ctx);
        }
        self.agents[agent] = Some(a);
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.world.queue.pop() else { return false };
        debug_assert!(ev.at >= self.world.now, "event queue went backwards");
        self.world.now = ev.at;
        match ev.kind {
            EventKind::Deliver { agent, pkt } => {
                self.dispatch(agent, |a, ctx| a.on_packet(pkt, ctx));
            }
            EventKind::Timer { agent, token } => {
                self.dispatch(agent, |a, ctx| a.on_timer(token, ctx));
            }
            EventKind::LinkTxDone { link } => {
                let (pkt, next) = self.world.links[link].tx_done(self.world.now);
                if let Some(ser) = next {
                    self.world.queue.push(self.world.now + ser, EventKind::LinkTxDone { link });
                }
                self.world.forward_after_tx(link, pkt);
            }
            EventKind::LinkEnqueue { link, pkt } => {
                self.world.offer_to_link(link, pkt);
            }
        }
        true
    }

    /// Runs until the event queue is exhausted or `deadline` is reached,
    /// whichever comes first. The clock ends at exactly `deadline` if it was
    /// reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.world.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.world.now < deadline {
            self.world.now = deadline;
        }
    }

    /// Runs for `dur` of simulated time from the current clock.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.world.now + dur;
        self.run_until(deadline);
    }

    /// Runs until no events remain (only safe for workloads that terminate).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.world.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Sink {
        received: Vec<(SimTime, u64)>,
        timers: Vec<u64>,
    }

    impl Sink {
        fn new() -> Self {
            Self::default()
        }
    }

    impl Agent for Sink {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            self.received.push((ctx.now(), pkt.id));
        }
        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
            self.timers.push(token);
        }
    }

    /// Echoes every packet straight back along a reverse route.
    struct Echo {
        reverse: Arc<Route>,
    }

    impl Agent for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            ctx.send(self.reverse.clone(), pkt.size_bytes, Payload::Raw);
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    #[test]
    fn packet_delivery_timing_includes_serialization_and_propagation() {
        let mut sim = Simulator::new(1);
        // 1 Mb/s, 10 ms propagation: 1250 B => 10 ms serialization.
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::from_millis(10)));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l], sink);
        sim.world_mut().send_packet(sink, route, 1250, Payload::Raw);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let got = &sim.agent::<Sink>(sink).received;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, ms(20));
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_nanos(v * 1_000_000)
    }

    #[test]
    fn two_hop_route_store_and_forward() {
        let mut sim = Simulator::new(1);
        let l1 = sim.add_link(LinkConfig::new(1_000_000, SimDuration::from_millis(5)));
        let l2 = sim.add_link(LinkConfig::new(1_000_000, SimDuration::from_millis(5)));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l1, l2], sink);
        sim.world_mut().send_packet(sink, route, 1250, Payload::Raw);
        sim.run_until(SimTime::from_secs_f64(1.0));
        // 10 ms ser + 5 ms prop + 10 ms ser + 5 ms prop = 30 ms.
        assert_eq!(sim.agent::<Sink>(sink).received[0].0, ms(30));
    }

    #[test]
    fn round_trip_through_echo_agent() {
        let mut sim = Simulator::new(1);
        let fwd = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(1)));
        let back = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(1)));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let echo = sim.add_agent(Box::new(Echo { reverse: Route::new(vec![back], sink) }));
        let route = Route::new(vec![fwd], echo);
        sim.world_mut().send_packet(sink, route, 125, Payload::Raw);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Sink>(sink).received.len(), 1);
        // 0.1 ms ser + 1 ms prop each way = 2.2 ms total.
        let t = sim.agent::<Sink>(sink).received[0].0;
        assert_eq!(t, SimTime::from_nanos(2_200_000));
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_agent(Box::new(Sink::new()));
        sim.kick(sink, SimDuration::from_millis(2), 20);
        sim.kick(sink, SimDuration::from_millis(1), 10);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Sink>(sink).timers, vec![10, 20]);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn droptail_losses_are_counted_globally() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::ZERO).queue_limit(1));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l], sink);
        for _ in 0..5 {
            sim.world_mut().send_packet(sink, route.clone(), 1250, Payload::Raw);
        }
        sim.run_until(SimTime::from_secs_f64(1.0));
        // 1 in service + 1 queued survive; 3 dropped.
        assert_eq!(sim.world().dropped_pkts, 3);
        assert_eq!(sim.agent::<Sink>(sink).received.len(), 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run() -> Vec<(SimTime, u64)> {
            let mut sim = Simulator::new(99);
            let l = sim.add_link(LinkConfig::new(5_000_000, SimDuration::from_micros(100)));
            let sink = sim.add_agent(Box::new(Sink::new()));
            let route = Route::new(vec![l], sink);
            for _ in 0..50 {
                sim.world_mut().send_packet(sink, route.clone(), 1500, Payload::Raw);
            }
            sim.run_until(SimTime::from_secs_f64(1.0));
            sim.agent::<Sink>(sink).received.clone()
        }
        assert_eq!(run(), run());
    }
}
