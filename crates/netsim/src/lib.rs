//! # netsim — deterministic discrete-event network simulator
//!
//! The substrate for the MPTCP energy-efficiency reproduction: a packet-level
//! network simulator in the style of `htsim` (the simulator the original
//! paper used for its datacenter experiments). It models:
//!
//! * unidirectional [`link::Link`]s with finite bandwidth, propagation delay,
//!   bounded DropTail queues, and optional DCTCP-style ECN marking;
//! * source-routed [`packet::Packet`]s that store-and-forward across
//!   multi-hop [`packet::Route`]s;
//! * [`sim::Agent`]s — protocol endpoints and traffic sources — driven by
//!   packet deliveries and timers;
//! * a strictly deterministic event loop ordered by `(time, insertion seq)`
//!   with a seeded RNG, so every experiment is exactly reproducible.
//!
//! Higher layers build on this: the `transport` crate implements TCP/MPTCP
//! endpoints as agents, `topology` builds link graphs and route sets, and
//! `workload` provides background-traffic agents.
//!
//! # Examples
//!
//! ```
//! use netsim::prelude::*;
//!
//! #[derive(Default)]
//! struct Counter { bytes: u64 }
//! impl Agent for Counter {
//!     fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
//!         self.bytes += u64::from(pkt.size_bytes);
//!     }
//!     fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
//! }
//!
//! let mut sim = Simulator::new(7);
//! let l = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(1)));
//! let sink = sim.add_agent(Box::new(Counter::default()));
//! let route = Route::new(vec![l], sink);
//! sim.world_mut().send_packet(sink, route, 1500, Payload::Raw);
//! sim.run_until(SimTime::from_secs_f64(0.1));
//! assert_eq!(sim.agent::<Counter>(sink).bytes, 1500);
//! ```

#[cfg(feature = "check-invariants")]
pub mod check;
pub mod event;
pub mod faults;
pub mod link;
pub mod packet;
pub(crate) mod pool;
pub mod sim;
pub mod time;

/// Convenient glob import of the common simulator types.
pub mod prelude {
    pub use crate::event::QueueKind;
    pub use crate::faults::{
        FaultAction, FaultEvent, FaultScript, Impairment, LossModel, ReorderModel,
    };
    pub use crate::link::{Link, LinkConfig, LinkStats};
    pub use crate::packet::{AgentId, LinkId, Packet, Payload, Route};
    pub use crate::sim::{
        Agent, Ctx, EngineConfig, Simulator, StallReport, StalledFlow, TimerHandle, Watched, World,
    };
    pub use crate::time::{SimDuration, SimTime};
}

#[cfg(feature = "check-invariants")]
pub use check::{install_default_invariants, InvariantCheck, InvariantViolation};
pub use event::QueueKind;
pub use faults::{
    is_exactly_zero, FaultAction, FaultEvent, FaultScript, Impairment, LossModel, ReorderModel,
};
pub use link::{Link, LinkConfig, LinkStats};
pub use packet::{AgentId, LinkId, Packet, Payload, Route};
pub use sim::{
    Agent, Ctx, EngineConfig, Simulator, StallReport, StalledFlow, TimerHandle, Watched, World,
};
pub use time::{SimDuration, SimTime};
