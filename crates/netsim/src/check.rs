//! Online invariant checker (compiled only with the `check-invariants`
//! feature).
//!
//! Checks are closures over `&Simulator` registered via
//! [`Simulator::add_invariant_check`]; the event loop runs every check after
//! each processed event and halts on the first `Err`. They are *observers*:
//! a check must not touch the RNG or the event queue, so a checked run is
//! byte-identical to an unchecked one (pinned by
//! `tests/invariants_online.rs`).
//!
//! [`install_default_invariants`] registers the simulator-level invariants
//! (per-link packet conservation, queue bounds, clock monotonicity);
//! transport-level invariants (exactly-once delivery, window bounds) are
//! registered by `transport::attach_flow` under the same feature.

use crate::sim::Simulator;
use crate::time::SimTime;

/// A failed invariant: when it was detected and what went wrong.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// Simulated time at which the violated state was observed.
    pub at: SimTime,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violated at t={:.6}s: {}", self.at.as_secs_f64(), self.message)
    }
}

/// An online invariant check. `FnMut` so a check can carry state across
/// steps (e.g. the previous clock reading); `Send` because simulators move
/// across sweep-runner worker threads.
pub type InvariantCheck = Box<dyn FnMut(&Simulator) -> Result<(), String> + Send>;

/// Registers the simulator-level invariants:
///
/// - **Clock monotonicity** — simulated time never decreases between events.
/// - **Per-link packet conservation** — every packet offered to a link is
///   accounted for: `offered = tx + queued + in_service + droptail_drops +
///   random_losses + blackout_drops` at every event boundary.
/// - **Queue bound** — no link queue exceeds its configured DropTail limit.
pub fn install_default_invariants(sim: &mut Simulator) {
    let mut last = SimTime::ZERO;
    sim.add_invariant_check(Box::new(move |s: &Simulator| {
        let now = s.now();
        if now < last {
            return Err(format!("clock went backwards: {now} < {last}"));
        }
        last = now;
        Ok(())
    }));
    sim.add_invariant_check(Box::new(|s: &Simulator| {
        let w = s.world();
        for i in 0..w.link_count() {
            let l = w.link(i);
            let st = l.stats();
            let in_service = l.is_busy() as u64;
            let accounted = st.tx_pkts
                + l.queue_len() as u64
                + in_service
                + st.drops
                + st.random_losses
                + st.blackout_drops;
            if st.offered != accounted {
                return Err(format!(
                    "link {i} packet conservation broken: offered={} but \
                     tx={} + queued={} + in_service={in_service} + drops={} \
                     + losses={} + blackout={} = {accounted}",
                    st.offered,
                    st.tx_pkts,
                    l.queue_len(),
                    st.drops,
                    st.random_losses,
                    st.blackout_drops,
                ));
            }
            if l.queue_len() > l.config().queue_limit_pkts {
                return Err(format!(
                    "link {i} queue over limit: {} > {}",
                    l.queue_len(),
                    l.config().queue_limit_pkts
                ));
            }
        }
        Ok(())
    }));
}
