//! The event queue.
//!
//! Events are ordered by `(time, insertion sequence)` so that simultaneous
//! events fire in FIFO order, which makes runs deterministic regardless of
//! heap internals.

use crate::packet::{AgentId, LinkId, Packet};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Kinds of scheduled work.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver a packet to its destination agent.
    Deliver { agent: AgentId, pkt: Packet },
    /// A link finished serializing its in-service packet.
    LinkTxDone { link: LinkId },
    /// A packet arrives at (is offered to) a link after propagation.
    LinkEnqueue { link: LinkId, pkt: Packet },
    /// A timer registered by an agent fires.
    Timer { agent: AgentId, token: u64 },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: SimTime,
    seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A monotonic priority queue of events.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)] // used by tests and kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(20), EventKind::Timer { agent: 0, token: 1 });
        q.push(SimTime::from_nanos(10), EventKind::Timer { agent: 0, token: 2 });
        q.push(SimTime::from_nanos(10), EventKind::Timer { agent: 0, token: 3 });

        let first = q.pop().unwrap();
        assert_eq!(first.at, SimTime::from_nanos(10));
        match first.kind {
            EventKind::Timer { token, .. } => assert_eq!(token, 2),
            _ => panic!("wrong kind"),
        }
        let second = q.pop().unwrap();
        match second.kind {
            EventKind::Timer { token, .. } => assert_eq!(token, 3),
            _ => panic!("wrong kind"),
        }
        let third = q.pop().unwrap();
        assert_eq!(third.at, SimTime::from_nanos(20));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(5), EventKind::Timer { agent: 1, token: 0 });
        q.push(SimTime::from_nanos(2), EventKind::Timer { agent: 1, token: 0 });
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
