//! The event queue.
//!
//! Events are ordered by `(time, insertion sequence)` so that simultaneous
//! events fire in FIFO order, which makes runs deterministic regardless of
//! queue internals.
//!
//! Two interchangeable backends implement that contract (selected by
//! [`QueueKind`], see `sim::EngineConfig`):
//!
//! * [`QueueKind::TimerWheel`] — the default hot-path engine: a single-level
//!   calendar queue of `NUM_BUCKETS` buckets of `2^BUCKET_SHIFT` ns each
//!   (≈131 µs buckets, ≈134 ms wheel horizon), with an occupancy bitmap for
//!   O(words) next-bucket scans and a binary-heap *far list* for events past
//!   the horizon (RTO timers, watchdog-scale timers). Pushes are O(1); pops
//!   stage one bucket at a time, sorting its handful of events once.
//! * [`QueueKind::BinaryHeap`] — the reference engine (the pre-wheel
//!   implementation), kept so byte-identity of the two backends can be pinned
//!   (`tests/sweep_determinism.rs`).
//!
//! Both backends extract the exact global minimum under `(time, seq)`, so a
//! run's event order — and therefore its entire evolution — is identical
//! whichever is active.

use crate::packet::{AgentId, LinkId};
use crate::pool::PacketSlot;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Log2 of the wheel bucket width in nanoseconds (2^17 ns ≈ 131 µs).
const BUCKET_SHIFT: u32 = 17;
/// Number of wheel buckets; the horizon is `NUM_BUCKETS << BUCKET_SHIFT` ns
/// (≈134 ms). Must be a power of two.
const NUM_BUCKETS: usize = 1024;
/// Words in the occupancy bitmap.
const OCC_WORDS: usize = NUM_BUCKETS / 64;
/// Initial capacity reserved per bucket, so steady-state operation does not
/// allocate (pinned by `tests/trace_noalloc.rs`).
const BUCKET_PREALLOC: usize = 4;

/// Which event-queue backend a simulator runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Bucketed calendar queue with far-future heap fallback (default).
    #[default]
    TimerWheel,
    /// Plain binary heap — the reference implementation for identity tests.
    BinaryHeap,
}

/// Kinds of scheduled work.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver a packet to its destination agent.
    Deliver { agent: AgentId, pkt: PacketSlot },
    /// A link finished serializing its in-service packet.
    LinkTxDone { link: LinkId },
    /// A packet arrives at (is offered to) a link after propagation.
    LinkEnqueue { link: LinkId, pkt: PacketSlot },
    /// A timer registered by an agent fires.
    Timer { agent: AgentId, token: u64 },
    /// A cancellable timer slot wakes (see `sim::World::arm_timer`): the
    /// slot's current deadline/generation decide whether anything fires.
    TimerWake { slot: u32, wake_gen: u32 },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: SimTime,
    seq: u64,
    pub kind: EventKind,
}

impl Event {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other.key().cmp(&self.key())
    }
}

#[inline]
fn bucket_of(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_SHIFT
}

/// The calendar-queue backend.
///
/// Invariants:
/// * every ring event's bucket lies in `[cur, cur + NUM_BUCKETS)`;
/// * every far-list event's bucket is `>= cur + NUM_BUCKETS`;
/// * `staged` holds (part of) bucket `staged_bucket == cur`, sorted
///   *ascending* by `(at, seq)` and drained from the front;
/// * pushes never predate the last popped event (the simulator only
///   schedules at or after `now`), so `bucket(at) >= cur` always holds.
///
/// `staged` is a `VecDeque` on purpose: a push into the mid-drain bucket
/// almost always carries the bucket's largest `(at, seq)` key (it is
/// scheduled after everything already there, and carries the globally
/// largest seq), so the hot insert is an O(1) `push_back` instead of a
/// front-biased `Vec::insert` memmove. When serialization time is shorter
/// than a bucket, nearly every `LinkTxDone` takes this path.
#[derive(Debug)]
struct Wheel {
    slots: Vec<Vec<Event>>,
    occ: [u64; OCC_WORDS],
    /// Absolute bucket index of the wheel position.
    cur: u64,
    /// The staged (current) bucket, sorted ascending; drained from the front.
    staged: VecDeque<Event>,
    staged_bucket: u64,
    /// Events beyond the wheel horizon.
    far: BinaryHeap<Event>,
    count: usize,
}

impl Wheel {
    fn new() -> Self {
        Wheel {
            slots: (0..NUM_BUCKETS).map(|_| Vec::with_capacity(BUCKET_PREALLOC)).collect(),
            occ: [0; OCC_WORDS],
            cur: 0,
            staged: VecDeque::with_capacity(BUCKET_PREALLOC),
            staged_bucket: 0,
            far: BinaryHeap::new(),
            count: 0,
        }
    }

    #[inline]
    fn slot_index(b: u64) -> usize {
        (b % NUM_BUCKETS as u64) as usize
    }

    #[inline]
    fn set_occ(&mut self, slot: usize) {
        self.occ[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear_occ(&mut self, slot: usize) {
        self.occ[slot / 64] &= !(1u64 << (slot % 64));
    }

    fn push(&mut self, ev: Event) {
        // `cur` only advances on pops (it tracks the last popped bucket), so
        // after a long event-free stretch new pushes may land on the far
        // list even though they are near `now`; the next pop jumps the
        // window forward and migrates them back. Pushes can never land
        // *behind* `cur`: the simulator only schedules at or after `now`.
        let b = bucket_of(ev.at);
        debug_assert!(b >= self.cur, "event scheduled before the wheel position");
        self.count += 1;
        if !self.staged.is_empty() && b == self.staged_bucket {
            // The staged bucket is mid-drain: keep it sorted ascending. A
            // fresh event carries the largest seq, so unless it is scheduled
            // strictly earlier than something still staged it is the new
            // maximum and appends in O(1).
            let key = ev.key();
            if self.staged.back().is_some_and(|last| last.key() < key) {
                self.staged.push_back(ev);
            } else {
                let pos = self
                    .staged
                    .binary_search_by(|probe| probe.key().cmp(&key))
                    .unwrap_or_else(|p| p);
                self.staged.insert(pos, ev);
            }
        } else if b < self.cur + NUM_BUCKETS as u64 {
            let slot = Self::slot_index(b);
            self.slots[slot].push(ev);
            self.set_occ(slot);
        } else {
            self.far.push(ev);
        }
    }

    /// First occupied slot at or after `from`, as an offset in
    /// `0..NUM_BUCKETS`, scanning the bitmap a word at a time.
    fn next_occupied_offset(&self, from: usize) -> Option<usize> {
        let first_word = from / 64;
        // First word: mask off bits below `from`.
        let mut word = self.occ[first_word] & (!0u64 << (from % 64));
        let mut widx = first_word;
        for step in 0..=OCC_WORDS {
            if word != 0 {
                let bit = widx * 64 + word.trailing_zeros() as usize;
                let offset = (bit + NUM_BUCKETS - from) % NUM_BUCKETS;
                // `step == OCC_WORDS` revisits the first word; only bits
                // *below* `from` (already wrapped past) are valid there.
                if step == OCC_WORDS && bit >= from {
                    return None;
                }
                return Some(offset);
            }
            widx = (widx + 1) % OCC_WORDS;
            word = self.occ[widx];
            if step + 1 == OCC_WORDS {
                // Last lap: re-examine the first word's low bits (wrapped).
                word = self.occ[first_word] & !(!0u64 << (from % 64));
                widx = first_word;
                if from.is_multiple_of(64) {
                    break;
                }
            }
        }
        None
    }

    /// Ensures the next event (if any) sits at the back of `staged`.
    fn ensure_staged(&mut self) -> bool {
        if !self.staged.is_empty() {
            return true;
        }
        if self.count == 0 {
            return false;
        }
        loop {
            // Pull far-list events that now fall inside the window.
            while let Some(top) = self.far.peek() {
                if bucket_of(top.at) >= self.cur + NUM_BUCKETS as u64 {
                    break;
                }
                // simlint: allow(P001, invariant: peek just returned Some on this non-empty heap)
                let ev = self.far.pop().expect("peeked far event vanished");
                let slot = Self::slot_index(bucket_of(ev.at));
                self.slots[slot].push(ev);
                self.set_occ(slot);
            }
            let cur_slot = Self::slot_index(self.cur);
            if let Some(offset) = self.next_occupied_offset(cur_slot) {
                let b = self.cur + offset as u64;
                let slot = Self::slot_index(b);
                debug_assert!(!self.slots[slot].is_empty());
                let mut bucket = std::mem::take(&mut self.slots[slot]);
                self.clear_occ(slot);
                // Ascending sort: the earliest (time, seq) pops from the
                // front. Vec -> VecDeque is O(1) and reuses the allocation.
                bucket.sort_unstable_by_key(Event::key);
                self.staged = VecDeque::from(bucket);
                self.staged_bucket = b;
                self.cur = b;
                return true;
            }
            // Ring empty; jump the window to the far list.
            match self.far.peek() {
                Some(top) => self.cur = bucket_of(top.at),
                None => {
                    debug_assert_eq!(self.count, 0);
                    return false;
                }
            }
        }
    }

    fn pop(&mut self) -> Option<Event> {
        if !self.ensure_staged() {
            return None;
        }
        let ev = self.staged.pop_front();
        if ev.is_some() {
            self.count -= 1;
            if self.staged.is_empty() {
                // Hand the drained buffer's capacity back to its slot so
                // steady-state cycling over buckets reuses allocations.
                // An empty VecDeque converts to a Vec in O(1).
                let slot = Self::slot_index(self.staged_bucket);
                if self.slots[slot].capacity() < self.staged.capacity() {
                    self.slots[slot] = Vec::from(std::mem::take(&mut self.staged));
                }
            }
        }
        ev
    }

    fn peek(&mut self) -> Option<&Event> {
        if self.ensure_staged() {
            self.staged.front()
        } else {
            None
        }
    }
}

#[derive(Debug)]
enum QueueImpl {
    Heap(BinaryHeap<Event>),
    Wheel(Box<Wheel>),
}

/// A monotonic priority queue of events.
#[derive(Debug)]
pub(crate) struct EventQueue {
    imp: QueueImpl,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new(QueueKind::default())
    }
}

impl EventQueue {
    pub fn new(kind: QueueKind) -> Self {
        let imp = match kind {
            QueueKind::BinaryHeap => QueueImpl::Heap(BinaryHeap::new()),
            QueueKind::TimerWheel => QueueImpl::Wheel(Box::new(Wheel::new())),
        };
        EventQueue { imp, next_seq: 0 }
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { at, seq, kind };
        match &mut self.imp {
            QueueImpl::Heap(h) => h.push(ev),
            QueueImpl::Wheel(w) => w.push(ev),
        }
    }

    pub fn pop(&mut self) -> Option<Event> {
        match &mut self.imp {
            QueueImpl::Heap(h) => h.pop(),
            QueueImpl::Wheel(w) => w.pop(),
        }
    }

    /// The next event, without popping it. `&mut` because the wheel may have
    /// to stage its next bucket to know the answer.
    pub fn peek(&mut self) -> Option<&Event> {
        match &mut self.imp {
            QueueImpl::Heap(h) => h.peek(),
            QueueImpl::Wheel(w) => w.peek(),
        }
    }

    /// Pops the next event only if `pred` accepts it (ACK-batching hook).
    pub fn pop_if(&mut self, pred: impl FnOnce(&Event) -> bool) -> Option<Event> {
        if self.peek().is_some_and(pred) {
            self.pop()
        } else {
            None
        }
    }

    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        match &self.imp {
            QueueImpl::Heap(h) => h.len(),
            QueueImpl::Wheel(w) => w.count,
        }
    }

    #[allow(dead_code)] // used by tests and kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn timer(token: u64) -> EventKind {
        EventKind::Timer { agent: 0, token }
    }

    fn both_kinds() -> [EventQueue; 2] {
        [EventQueue::new(QueueKind::TimerWheel), EventQueue::new(QueueKind::BinaryHeap)]
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        for mut q in both_kinds() {
            q.push(SimTime::from_nanos(20), timer(1));
            q.push(SimTime::from_nanos(10), timer(2));
            q.push(SimTime::from_nanos(10), timer(3));

            let first = q.pop().unwrap();
            assert_eq!(first.at, SimTime::from_nanos(10));
            match first.kind {
                EventKind::Timer { token, .. } => assert_eq!(token, 2),
                _ => panic!("wrong kind"),
            }
            let second = q.pop().unwrap();
            match second.kind {
                EventKind::Timer { token, .. } => assert_eq!(token, 3),
                _ => panic!("wrong kind"),
            }
            let third = q.pop().unwrap();
            assert_eq!(third.at, SimTime::from_nanos(20));
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        for mut q in both_kinds() {
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_nanos(5), timer(0));
            q.push(SimTime::from_nanos(2), timer(0));
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
            assert_eq!(q.len(), 2);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn wheel_handles_far_future_and_bucket_wrap() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        // One event far past the wheel horizon, one close by.
        q.push(SimTime::from_secs_f64(10.0), timer(100));
        q.push(SimTime::from_nanos(50), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(50)));
        match q.pop().unwrap().kind {
            EventKind::Timer { token, .. } => assert_eq!(token, 1),
            _ => panic!("wrong kind"),
        }
        // Queue jumps across the empty horizon to the far event.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(10.0)));
        match q.pop().unwrap().kind {
            EventKind::Timer { token, .. } => assert_eq!(token, 100),
            _ => panic!("wrong kind"),
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_into_staged_bucket_keeps_fifo() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        let t = SimTime::from_nanos(1000);
        q.push(t, timer(1));
        q.push(t, timer(2));
        // Staging happens on peek; a push at the same time afterwards must
        // still pop last among its equals.
        assert_eq!(q.peek_time(), Some(t));
        q.push(t, timer(3));
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => panic!("wrong kind"),
            })
            .collect();
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    /// The central equivalence pin at the queue level: a randomized
    /// push/pop workload (monotone non-decreasing push times, as the
    /// simulator guarantees) drains in the identical order from both
    /// backends.
    #[test]
    fn wheel_and_heap_drain_identically_under_random_workload() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut wheel = EventQueue::new(QueueKind::TimerWheel);
        let mut heap = EventQueue::new(QueueKind::BinaryHeap);
        let mut now = 0u64;
        let mut token = 0u64;
        for _ in 0..5_000 {
            if rng.gen_bool(0.6) {
                // Mixed horizons: same bucket, nearby buckets, far future.
                let delta: u64 = match rng.gen_range(0..4u32) {
                    0 => rng.gen_range(0..1_000),
                    1 => rng.gen_range(0..2_000_000),
                    2 => rng.gen_range(0..200_000_000),
                    _ => rng.gen_range(0..5_000_000_000),
                };
                token += 1;
                wheel.push(SimTime::from_nanos(now + delta), timer(token));
                heap.push(SimTime::from_nanos(now + delta), timer(token));
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                match (&a, &b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.at, y.at);
                        match (&x.kind, &y.kind) {
                            (
                                EventKind::Timer { token: ta, .. },
                                EventKind::Timer { token: tb, .. },
                            ) => assert_eq!(ta, tb),
                            _ => panic!("wrong kinds"),
                        }
                        now = now.max(x.at.as_nanos());
                    }
                    _ => panic!("one backend drained early: {a:?} vs {b:?}"),
                }
            }
        }
        // Drain the rest in lockstep.
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.at, y.at);
                }
                (a, b) => panic!("length mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
