//! Packets, routes, and addressing.
//!
//! The simulator uses *source routing*: every [`Packet`] carries a shared
//! [`Route`] (the ordered list of links it will traverse plus the destination
//! agent), and a `hop` cursor. This sidesteps per-switch forwarding tables
//! while still modelling multi-hop store-and-forward behaviour exactly; the
//! topology crate is responsible for computing the available routes (e.g. the
//! ECMP path set of a FatTree).

use crate::time::SimTime;
use std::sync::Arc;

/// Identifier of an agent (protocol endpoint, traffic source/sink) registered
/// with the simulator.
pub type AgentId = usize;

/// Identifier of a unidirectional link registered with the simulator.
pub type LinkId = usize;

/// A source route: the ordered sequence of links a packet traverses, and the
/// agent that receives it at the end.
///
/// Routes are immutable once built and shared via [`Arc`], so cloning a packet
/// does not copy the path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Links traversed, in order.
    pub links: Vec<LinkId>,
    /// Agent delivered to after the last link.
    pub dst: AgentId,
}

impl Route {
    /// Creates a route over `links` terminating at agent `dst`.
    pub fn new(links: Vec<LinkId>, dst: AgentId) -> Arc<Self> {
        Arc::new(Route { links, dst })
    }

    /// A zero-hop route that delivers directly to `dst` (useful in tests).
    pub fn direct(dst: AgentId) -> Arc<Self> {
        Arc::new(Route { links: Vec::new(), dst })
    }

    /// Number of links on the route.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

/// Transport-level content of a packet.
///
/// `netsim` itself never interprets these fields beyond `size_bytes`; they are
/// carried verbatim to the destination agent. Keeping the enum here (rather
/// than making packets generic) keeps the event queue monomorphic and fast.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// An MPTCP/TCP data segment.
    Data {
        /// Connection identifier (unique per [`crate::sim::Simulator`]).
        conn: u64,
        /// Index of the subflow within the connection.
        subflow: u32,
        /// Subflow-level sequence number, in MSS-sized packets.
        seq: u64,
        /// Connection-level data sequence number, in packets.
        data_seq: u64,
        /// Whether this segment is a retransmission.
        retransmit: bool,
    },
    /// An acknowledgement travelling back to the sender.
    Ack {
        /// Connection identifier.
        conn: u64,
        /// Index of the subflow within the connection.
        subflow: u32,
        /// Cumulative subflow-level ACK: next expected subflow sequence.
        cum_ack: u64,
        /// One past the highest subflow sequence received (SACK-style hint:
        /// everything ≥ 3 below it and unacked is presumed lost).
        sack_high: u64,
        /// The subflow sequence of the segment that triggered this ACK — the
        /// per-packet selective-acknowledgement signal the sender's
        /// scoreboard uses to mark individual deliveries. `None` when the
        /// ACK acknowledges no new segment (a pure window report, e.g. the
        /// reply to a discarded zero-window probe).
        for_seq: Option<u64>,
        /// Cumulative connection-level data ACK: next expected data sequence.
        data_ack: u64,
        /// Receive window in packets (connection level).
        rwnd_pkts: u64,
        /// ECN echo for the segment being acknowledged (DCTCP-style per-packet
        /// echo).
        ecn_echo: bool,
        /// `sent_at` timestamp of the data segment that triggered this ACK,
        /// echoed back for Karn-safe RTT sampling.
        ts_echo: SimTime,
    },
    /// Opaque cross-traffic (CBR/Pareto burst filler); only occupies capacity.
    Raw,
}

/// A packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Globally unique packet id (assigned by the simulator).
    pub id: u64,
    /// Agent that sent the packet.
    pub src: AgentId,
    /// Wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Time the packet was handed to the first link.
    pub sent_at: SimTime,
    /// ECN Congestion-Experienced mark, set by links over their marking
    /// threshold.
    pub ecn_ce: bool,
    /// Index into `route.links` of the next link to traverse.
    pub hop: usize,
    /// Poisoned by a corruption impairment: the payload must not be trusted,
    /// and the destination agent is expected to discard the packet
    /// (checksum-failure semantics).
    pub corrupted: bool,
    /// The source route.
    pub route: Arc<Route>,
    /// Transport payload.
    pub payload: Payload,
}

impl Packet {
    /// Whether the packet has traversed every link on its route.
    pub fn at_last_hop(&self) -> bool {
        self.hop >= self.route.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_route_has_no_hops() {
        let r = Route::direct(7);
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.dst, 7);
    }

    #[test]
    fn packet_hop_progression() {
        let r = Route::new(vec![0, 1, 2], 9);
        let mut p = Packet {
            id: 0,
            src: 1,
            size_bytes: 1500,
            sent_at: SimTime::ZERO,
            ecn_ce: false,
            hop: 0,
            corrupted: false,
            route: r,
            payload: Payload::Raw,
        };
        assert!(!p.at_last_hop());
        p.hop = 3;
        assert!(p.at_last_hop());
    }
}
