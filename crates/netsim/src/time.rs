//! Simulated time.
//!
//! All simulator clocks are nanosecond-resolution unsigned integers so that
//! event ordering is exact and runs are bit-reproducible. [`SimTime`] is an
//! absolute instant, [`SimDuration`] a length of time; the two are kept as
//! separate newtypes so they cannot be mixed up ([C-NEWTYPE]).
//!
//! # Examples
//!
//! ```
//! use netsim::time::{SimTime, SimDuration};
//!
//! let t = SimTime::ZERO + SimDuration::from_millis(5);
//! assert_eq!(t.as_secs_f64(), 0.005);
//! assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(5_000));
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Converts fractional seconds to saturating nanoseconds — the single place
/// float time becomes integer time.
///
/// # Panics
///
/// Panics if `secs` is negative or not finite.
fn saturating_nanos_from_secs(secs: f64, what: &str) -> u64 {
    assert!(secs.is_finite() && secs >= 0.0, "invalid {what} {secs}");
    // Validated non-negative and finite above, and float→int `as` casts
    // saturate at the destination bounds (Rust 1.45+), so a value beyond
    // u64::MAX nanoseconds (~584 years) clamps instead of wrapping.
    let nanos = (secs * 1e9).round();
    nanos as u64 // simlint: allow(A001, saturating by float-to-int cast semantics; input validated finite and non-negative)
}

/// An absolute instant of simulated time, in nanoseconds since the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds since the simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from seconds (fractional) since the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(saturating_nanos_from_secs(secs, "simulation time"))
    }

    /// Raw nanoseconds since the simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration since an earlier instant, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(saturating_nanos_from_secs(secs, "duration"))
    }

    /// Creates a duration from a 128-bit nanosecond count, saturating at the
    /// representable maximum (~584 years). The checked entry point for
    /// arithmetic that widens to `u128` to avoid intermediate overflow — a
    /// bare `as u64` here once truncated serialization delays of large
    /// packets on pathological sub-bit/s links (see `LinkConfig::serialization`).
    pub const fn from_nanos_u128(ns: u128) -> Self {
        if ns > u64::MAX as u128 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64) // simlint: allow(A001, bounds-checked on the previous line; cast cannot truncate)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    /// Saturating: durations near the `u64` nanosecond ceiling multiplied by
    /// large factors (e.g. an RTO already at a large floor doubled 2¹⁶
    /// times) clamp to the maximum representable duration instead of
    /// silently wrapping in release builds.
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let t2 = t + SimDuration::from_millis(250);
        assert_eq!(t2 - t, SimDuration::from_micros(250_000));
        assert!((t2.as_secs_f64() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(4), SimDuration::from_nanos(4000));
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(10));
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_millis(10) * 3, SimDuration::from_millis(30));
        assert_eq!(SimDuration::from_millis(10) / 2, SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_secs(1) * 0.25, SimDuration::from_millis(250));
    }

    #[test]
    fn duration_multiply_saturates() {
        let near_max = SimDuration::from_nanos(u64::MAX / 2 + 1);
        assert_eq!(near_max * 2, SimDuration::from_nanos(u64::MAX));
        assert_eq!(near_max * (1 << 16), SimDuration::from_nanos(u64::MAX));
        assert_eq!(SimDuration::ZERO * u64::MAX, SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }
}
