//! Fault injection: link impairments and declarative fault timelines.
//!
//! Two layers:
//!
//! * **[`Impairment`]** — per-link packet-loss models ([`LossModel::Iid`]
//!   random loss, [`LossModel::GilbertElliott`] bursty loss) and an up/down
//!   state. Impairments are consulted by the [`World`](crate::sim::World)
//!   when a packet is offered to a link, *before* the DropTail queue sees it,
//!   using the simulation's seeded RNG — so faulty runs stay exactly
//!   reproducible. A link whose loss model is [`LossModel::None`] draws
//!   nothing from the RNG, leaving the random stream of fault-free scenarios
//!   untouched.
//!
//! * **[`FaultScript`]** — a declarative timeline of [`FaultAction`]s
//!   (loss / bandwidth / propagation changes, blackouts) that installs
//!   itself as an ordinary simulator agent and applies each action at its
//!   scheduled time. This replaces the ad-hoc pattern of pausing the run
//!   loop to poke `world_mut().link_mut(..)` between `run_until` calls.
//!
//! # Examples
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut sim = Simulator::new(7);
//! let l = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(5)));
//!
//! FaultScript::new()
//!     .at(SimTime::from_secs_f64(1.0), FaultAction::SetLoss { link: l, model: LossModel::iid(0.02) })
//!     .at(SimTime::from_secs_f64(2.0), FaultAction::LinkDown { link: l })
//!     .at(SimTime::from_secs_f64(4.0), FaultAction::LinkUp { link: l })
//!     .install(&mut sim);
//!
//! sim.run_until(SimTime::from_secs_f64(5.0));
//! assert!(sim.world().link(l).is_up());
//! ```

use crate::packet::{LinkId, Packet};
use crate::sim::{Agent, Ctx};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// A per-packet loss process applied where a packet is offered to a link.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum LossModel {
    /// No random loss (the default; draws nothing from the RNG).
    #[default]
    None,
    /// Independent, identically distributed loss with probability `p`.
    Iid {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott two-state bursty loss. The channel alternates between
    /// a *good* and a *bad* state with the given per-packet transition
    /// probabilities; each state has its own loss probability. Mean burst
    /// length in packets is `1 / p_bad_good`.
    GilbertElliott {
        /// Per-packet probability of moving good → bad.
        p_good_bad: f64,
        /// Per-packet probability of moving bad → good.
        p_bad_good: f64,
        /// Loss probability while in the good state (often 0).
        loss_good: f64,
        /// Loss probability while in the bad state (often near 1).
        loss_bad: f64,
    },
}

impl LossModel {
    /// I.i.d. loss with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn iid(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range: {p}");
        if p == 0.0 {
            LossModel::None
        } else {
            LossModel::Iid { p }
        }
    }

    /// Gilbert–Elliott bursty loss.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn gilbert_elliott(
        p_good_bad: f64,
        p_bad_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        for (name, p) in [
            ("p_good_bad", p_good_bad),
            ("p_bad_good", p_bad_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of range: {p}");
        }
        LossModel::GilbertElliott { p_good_bad, p_bad_good, loss_good, loss_bad }
    }
}

/// Runtime impairment state of one link: loss process + up/down.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Impairment {
    loss: LossModel,
    /// Gilbert–Elliott channel state (`true` = bad). Carried here so the
    /// burst process survives loss-model reconfiguration of *other* fields.
    ge_bad: bool,
    down: bool,
}

impl Impairment {
    /// The active loss model.
    pub fn loss_model(&self) -> &LossModel {
        &self.loss
    }

    /// Replaces the loss model. Switching to [`LossModel::GilbertElliott`]
    /// starts the channel in the good state.
    pub fn set_loss(&mut self, model: LossModel) {
        self.ge_bad = false;
        self.loss = model;
    }

    /// Whether the link is administratively up.
    pub fn is_up(&self) -> bool {
        !self.down
    }

    pub(crate) fn set_up(&mut self, up: bool) {
        self.down = !up;
    }

    /// Rolls the loss process for one offered packet; `true` means the packet
    /// is lost. Consumes RNG draws only when a loss model is active.
    pub(crate) fn roll_loss(&mut self, rng: &mut SmallRng) -> bool {
        match self.loss.clone() {
            LossModel::None => false,
            LossModel::Iid { p } => rng.gen_bool(p),
            LossModel::GilbertElliott { p_good_bad, p_bad_good, loss_good, loss_bad } => {
                if self.ge_bad {
                    if rng.gen_bool(p_bad_good) {
                        self.ge_bad = false;
                    }
                } else if rng.gen_bool(p_good_bad) {
                    self.ge_bad = true;
                }
                let p = if self.ge_bad { loss_bad } else { loss_good };
                p > 0.0 && rng.gen_bool(p)
            }
        }
    }
}

/// One scripted change to the network.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Installs `model` as the link's loss process.
    SetLoss {
        /// Target link.
        link: LinkId,
        /// Loss model to install.
        model: LossModel,
    },
    /// Changes the link rate (packets already in service keep their old
    /// serialization schedule).
    SetBandwidth {
        /// Target link.
        link: LinkId,
        /// New rate in bits per second.
        bps: u64,
    },
    /// Changes the one-way propagation delay.
    SetPropagation {
        /// Target link.
        link: LinkId,
        /// New propagation delay.
        propagation: SimDuration,
    },
    /// Takes the link down: its queue is drained (counted as
    /// `blackout_drops`) and every packet offered while down is dropped. A
    /// packet already in service completes transmission.
    LinkDown {
        /// Target link.
        link: LinkId,
    },
    /// Brings the link back up; subsequent offers enqueue normally.
    LinkUp {
        /// Target link.
        link: LinkId,
    },
}

/// A timestamped [`FaultAction`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulated time at which the action applies.
    pub at: SimTime,
    /// The change to apply.
    pub action: FaultAction,
}

/// A declarative timeline of network faults, installed as a simulator agent.
///
/// Build with [`FaultScript::at`] (events may be added in any order; they are
/// applied in time order, ties in insertion order) and activate with
/// [`FaultScript::install`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `action` at absolute time `at`.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Adds a whole blackout window: down at `from`, back up at `until`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn blackout(self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "blackout window is empty");
        self.at(from, FaultAction::LinkDown { link }).at(until, FaultAction::LinkUp { link })
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Registers the script with `sim` as an agent and schedules every event.
    /// Events timed at or before the current clock apply at the current time.
    /// Returns the agent id (useful only for diagnostics).
    pub fn install(mut self, sim: &mut crate::sim::Simulator) -> crate::packet::AgentId {
        self.events.sort_by_key(|e| e.at);
        let now = sim.now();
        let delays: Vec<SimDuration> =
            self.events.iter().map(|e| e.at.saturating_since(now)).collect();
        let id = sim.add_agent(Box::new(FaultScriptAgent { events: self.events }));
        let world = sim.world_mut();
        for (i, delay) in delays.into_iter().enumerate() {
            world.schedule_in(id, delay, i as u64);
        }
        id
    }
}

/// The agent a [`FaultScript`] turns into once installed.
struct FaultScriptAgent {
    events: Vec<FaultEvent>,
}

impl Agent for FaultScriptAgent {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
        // Fault scripts are not packet endpoints; routed packets are ignored.
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let ev = &self.events[token as usize];
        ctx.apply_fault(&ev.action);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_model_draws_nothing_and_never_loses() {
        let mut imp = Impairment::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let witness = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!imp.roll_loss(&mut rng));
        }
        assert_eq!(rng, witness, "LossModel::None must not perturb the RNG stream");
    }

    #[test]
    fn iid_loss_rate_tracks_probability() {
        let mut imp = Impairment::default();
        imp.set_loss(LossModel::iid(0.3));
        let mut rng = SmallRng::seed_from_u64(2);
        let losses = (0..20_000).filter(|_| imp.roll_loss(&mut rng)).count();
        let rate = losses as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "iid loss rate {rate}");
    }

    #[test]
    fn iid_zero_probability_is_none() {
        assert_eq!(LossModel::iid(0.0), LossModel::None);
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same marginal loss rate (~10%) as an i.i.d. model, but losses
        // should arrive in runs: compare the number of loss *clusters*.
        let mut ge = Impairment::default();
        ge.set_loss(LossModel::gilbert_elliott(0.0111, 0.1, 0.0, 1.0));
        let mut iid = Impairment::default();
        iid.set_loss(LossModel::iid(0.1));

        fn clusters(imp: &mut Impairment, seed: u64, n: usize) -> (usize, usize) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (mut losses, mut clusters, mut prev) = (0usize, 0usize, false);
            for _ in 0..n {
                let lost = imp.roll_loss(&mut rng);
                if lost {
                    losses += 1;
                    if !prev {
                        clusters += 1;
                    }
                }
                prev = lost;
            }
            (losses, clusters)
        }

        let (ge_losses, ge_clusters) = clusters(&mut ge, 3, 50_000);
        let (iid_losses, iid_clusters) = clusters(&mut iid, 3, 50_000);
        let ge_rate = ge_losses as f64 / 50_000.0;
        assert!((0.05..0.2).contains(&ge_rate), "GE marginal loss rate {ge_rate}");
        // Bursts: far fewer clusters than an i.i.d. process at similar rate.
        assert!(
            (ge_clusters as f64) < 0.5 * iid_clusters as f64,
            "GE clusters {ge_clusters} vs iid clusters {iid_clusters}"
        );
        assert!(iid_losses > 0);
    }

    #[test]
    fn set_loss_resets_burst_state() {
        let mut imp = Impairment::default();
        imp.set_loss(LossModel::gilbert_elliott(1.0, 0.0, 0.0, 1.0));
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(imp.roll_loss(&mut rng), "deterministic transition to bad must lose");
        imp.set_loss(LossModel::gilbert_elliott(0.0, 0.0, 0.0, 1.0));
        assert!(!imp.roll_loss(&mut rng), "reconfigure must restart in the good state");
    }

    #[test]
    #[should_panic]
    fn iid_rejects_out_of_range() {
        let _ = LossModel::iid(1.5);
    }

    #[test]
    fn script_events_sort_on_install() {
        let s = FaultScript::new()
            .at(SimTime::from_secs_f64(2.0), FaultAction::LinkUp { link: 0 })
            .at(SimTime::from_secs_f64(1.0), FaultAction::LinkDown { link: 0 });
        assert_eq!(s.events().len(), 2);
        // Ordering is exercised end-to-end in sim-level tests; here we only
        // check the builder keeps both events.
        let s2 = s.clone().blackout(1, SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(4.0));
        assert_eq!(s2.events().len(), 4);
    }

    #[test]
    #[should_panic]
    fn blackout_rejects_empty_window() {
        let _ = FaultScript::new().blackout(
            0,
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(2.0),
        );
    }
}
