//! Fault injection: link impairments and declarative fault timelines.
//!
//! Two layers:
//!
//! * **[`Impairment`]** — per-link packet-loss models ([`LossModel::Iid`]
//!   random loss, [`LossModel::GilbertElliott`] bursty loss), an up/down
//!   state, and the adversarial delivery impairments: [`ReorderModel`]
//!   extra-delay jitter (breaks FIFO delivery), duplication (a packet is
//!   delivered twice), and corruption (a packet is delivered poisoned and
//!   must be discarded by the endpoint). Loss is consulted by the
//!   [`World`](crate::sim::World) when a packet is offered to a link,
//!   *before* the DropTail queue sees it; reorder/duplicate/corrupt are
//!   rolled once per transmitted packet, after serialization. All draws come
//!   from the simulation's seeded RNG — so faulty runs stay exactly
//!   reproducible — and every inactive model draws nothing, leaving the
//!   random stream of fault-free scenarios untouched.
//!
//! * **[`FaultScript`]** — a declarative timeline of [`FaultAction`]s
//!   (loss / bandwidth / propagation changes, blackouts) that installs
//!   itself as an ordinary simulator agent and applies each action at its
//!   scheduled time. This replaces the ad-hoc pattern of pausing the run
//!   loop to poke `world_mut().link_mut(..)` between `run_until` calls.
//!
//! # Examples
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut sim = Simulator::new(7);
//! let l = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(5)));
//!
//! FaultScript::new()
//!     .at(SimTime::from_secs_f64(1.0), FaultAction::SetLoss { link: l, model: LossModel::iid(0.02) })
//!     .at(SimTime::from_secs_f64(2.0), FaultAction::LinkDown { link: l })
//!     .at(SimTime::from_secs_f64(4.0), FaultAction::LinkUp { link: l })
//!     .install(&mut sim);
//!
//! sim.run_until(SimTime::from_secs_f64(5.0));
//! assert!(sim.world().link(l).is_up());
//! ```

use crate::packet::{LinkId, Packet};
use crate::sim::{Agent, Ctx};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// Validates one probability argument, rejecting NaN with a dedicated
/// message (the range check alone would report NaN with the generic
/// out-of-range text, hiding the real bug at the call site).
fn check_prob(name: &str, p: f64) -> f64 {
    assert!(!p.is_nan(), "{name} must not be NaN");
    assert!((0.0..=1.0).contains(&p), "{name} out of range: {p}");
    p
}

/// Exact-zero sentinel test for probabilities and rates.
///
/// This is the **canonical allowlisted F001 pattern** (see `DESIGN.md` §11):
/// a literal `0.0` probability is a sentinel meaning "feature disabled", and
/// the distinction matters for determinism — an exactly-zero model is
/// collapsed to its inert variant and draws *nothing* from the seeded RNG,
/// while any nonzero probability consumes draws and shifts the random
/// stream of every later event. An epsilon compare here would make runs with
/// `p = 1e-300` silently draw-free. Route every float sentinel check through
/// this helper so the exact-compare allowlist stays a single entry.
#[allow(clippy::float_cmp)]
pub fn is_exactly_zero(p: f64) -> bool {
    debug_assert!(!p.is_nan(), "sentinel test on NaN");
    p == 0.0 // simlint: allow(F001, canonical exact-zero sentinel; zero must mean draw-free, so no epsilon applies)
}

/// A per-packet loss process applied where a packet is offered to a link.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum LossModel {
    /// No random loss (the default; draws nothing from the RNG).
    #[default]
    None,
    /// Independent, identically distributed loss with probability `p`.
    Iid {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott two-state bursty loss. The channel alternates between
    /// a *good* and a *bad* state with the given per-packet transition
    /// probabilities; each state has its own loss probability. Mean burst
    /// length in packets is `1 / p_bad_good`.
    GilbertElliott {
        /// Per-packet probability of moving good → bad.
        p_good_bad: f64,
        /// Per-packet probability of moving bad → good.
        p_bad_good: f64,
        /// Loss probability while in the good state (often 0).
        loss_good: f64,
        /// Loss probability while in the bad state (often near 1).
        loss_bad: f64,
    },
}

impl LossModel {
    /// I.i.d. loss with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    pub fn iid(p: f64) -> Self {
        check_prob("loss probability", p);
        if is_exactly_zero(p) {
            LossModel::None
        } else {
            LossModel::Iid { p }
        }
    }

    /// Gilbert–Elliott bursty loss.
    ///
    /// # Panics
    ///
    /// Panics if any probability is NaN or outside `[0, 1]`.
    pub fn gilbert_elliott(
        p_good_bad: f64,
        p_bad_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        for (name, p) in [
            ("p_good_bad", p_good_bad),
            ("p_bad_good", p_bad_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            check_prob(name, p);
        }
        LossModel::GilbertElliott { p_good_bad, p_bad_good, loss_good, loss_bad }
    }
}

/// A per-packet extra-delay process applied after a packet finishes
/// serialization, before its propagation across the link. Jittered packets
/// arrive behind packets transmitted later, breaking FIFO delivery.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum ReorderModel {
    /// No reordering (the default; draws nothing from the RNG).
    #[default]
    None,
    /// With probability `p`, add extra delay drawn uniformly from
    /// `[1 ns, max_extra]`.
    Uniform {
        /// Per-packet jitter probability in `[0, 1]`.
        p: f64,
        /// Upper bound on the extra delay.
        max_extra: SimDuration,
    },
}

impl ReorderModel {
    /// Uniform jitter: with probability `p`, delay a packet by up to
    /// `max_extra`. A zero probability or zero bound collapses to
    /// [`ReorderModel::None`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    pub fn uniform(p: f64, max_extra: SimDuration) -> Self {
        check_prob("reorder probability", p);
        if is_exactly_zero(p) || max_extra.is_zero() {
            ReorderModel::None
        } else {
            ReorderModel::Uniform { p, max_extra }
        }
    }
}

/// Runtime impairment state of one link: loss process, up/down, and the
/// post-transmission delivery impairments (reorder / duplicate / corrupt).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Impairment {
    loss: LossModel,
    /// Gilbert–Elliott channel state (`true` = bad). Carried here so the
    /// burst process survives loss-model reconfiguration of *other* fields.
    ge_bad: bool,
    down: bool,
    reorder: ReorderModel,
    duplicate_p: f64,
    corrupt_p: f64,
}

impl Impairment {
    /// The active loss model.
    pub fn loss_model(&self) -> &LossModel {
        &self.loss
    }

    /// Replaces the loss model. Switching to [`LossModel::GilbertElliott`]
    /// starts the channel in the good state.
    pub fn set_loss(&mut self, model: LossModel) {
        self.ge_bad = false;
        self.loss = model;
    }

    /// The active reorder model.
    pub fn reorder_model(&self) -> &ReorderModel {
        &self.reorder
    }

    /// Replaces the reorder (extra-delay jitter) model.
    pub fn set_reorder(&mut self, model: ReorderModel) {
        self.reorder = model;
    }

    /// The per-packet duplication probability.
    pub fn duplicate_p(&self) -> f64 {
        self.duplicate_p
    }

    /// Sets the probability that a transmitted packet is delivered twice.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    pub fn set_duplicate(&mut self, p: f64) {
        self.duplicate_p = check_prob("duplicate probability", p);
    }

    /// The per-packet corruption probability.
    pub fn corrupt_p(&self) -> f64 {
        self.corrupt_p
    }

    /// Sets the probability that a transmitted packet is delivered poisoned.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    pub fn set_corrupt(&mut self, p: f64) {
        self.corrupt_p = check_prob("corrupt probability", p);
    }

    /// Whether the link is administratively up.
    pub fn is_up(&self) -> bool {
        !self.down
    }

    pub(crate) fn set_up(&mut self, up: bool) {
        self.down = !up;
    }

    /// Rolls the loss process for one offered packet; `true` means the packet
    /// is lost. Consumes RNG draws only when a loss model is active.
    pub(crate) fn roll_loss(&mut self, rng: &mut SmallRng) -> bool {
        match self.loss.clone() {
            LossModel::None => false,
            LossModel::Iid { p } => rng.gen_bool(p),
            LossModel::GilbertElliott { p_good_bad, p_bad_good, loss_good, loss_bad } => {
                if self.ge_bad {
                    if rng.gen_bool(p_bad_good) {
                        self.ge_bad = false;
                    }
                } else if rng.gen_bool(p_good_bad) {
                    self.ge_bad = true;
                }
                let p = if self.ge_bad { loss_bad } else { loss_good };
                p > 0.0 && rng.gen_bool(p)
            }
        }
    }

    /// Rolls the reorder process for one transmitted packet copy, returning
    /// the extra delay to add (if any). Draws RNG only when a model is
    /// active.
    pub(crate) fn roll_reorder(&mut self, rng: &mut SmallRng) -> Option<SimDuration> {
        match self.reorder {
            ReorderModel::None => None,
            ReorderModel::Uniform { p, max_extra } => {
                if rng.gen_bool(p) {
                    Some(SimDuration::from_nanos(rng.gen_range(1..=max_extra.as_nanos())))
                } else {
                    None
                }
            }
        }
    }

    /// Rolls the duplication process; `true` means deliver a second copy.
    /// Draws RNG only when duplication is active.
    pub(crate) fn roll_duplicate(&mut self, rng: &mut SmallRng) -> bool {
        self.duplicate_p > 0.0 && rng.gen_bool(self.duplicate_p)
    }

    /// Rolls the corruption process; `true` means poison the packet. Draws
    /// RNG only when corruption is active.
    pub(crate) fn roll_corrupt(&mut self, rng: &mut SmallRng) -> bool {
        self.corrupt_p > 0.0 && rng.gen_bool(self.corrupt_p)
    }
}

/// One scripted change to the network.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Installs `model` as the link's loss process.
    SetLoss {
        /// Target link.
        link: LinkId,
        /// Loss model to install.
        model: LossModel,
    },
    /// Changes the link rate (packets already in service keep their old
    /// serialization schedule).
    SetBandwidth {
        /// Target link.
        link: LinkId,
        /// New rate in bits per second.
        bps: u64,
    },
    /// Changes the one-way propagation delay.
    SetPropagation {
        /// Target link.
        link: LinkId,
        /// New propagation delay.
        propagation: SimDuration,
    },
    /// Takes the link down: its queue is drained (counted as
    /// `blackout_drops`) and every packet offered while down is dropped. A
    /// packet already in service completes transmission.
    LinkDown {
        /// Target link.
        link: LinkId,
    },
    /// Brings the link back up; subsequent offers enqueue normally.
    LinkUp {
        /// Target link.
        link: LinkId,
    },
    /// Installs `model` as the link's reorder (extra-delay jitter) process.
    SetReorder {
        /// Target link.
        link: LinkId,
        /// Reorder model to install.
        model: ReorderModel,
    },
    /// Sets the per-packet duplication probability.
    SetDuplicate {
        /// Target link.
        link: LinkId,
        /// Probability in `[0, 1]` that a transmitted packet is delivered
        /// twice.
        p: f64,
    },
    /// Sets the per-packet corruption probability.
    SetCorrupt {
        /// Target link.
        link: LinkId,
        /// Probability in `[0, 1]` that a transmitted packet arrives
        /// poisoned.
        p: f64,
    },
}

impl FaultAction {
    /// The link this action targets.
    pub fn link(&self) -> LinkId {
        match *self {
            FaultAction::SetLoss { link, .. }
            | FaultAction::SetBandwidth { link, .. }
            | FaultAction::SetPropagation { link, .. }
            | FaultAction::LinkDown { link }
            | FaultAction::LinkUp { link }
            | FaultAction::SetReorder { link, .. }
            | FaultAction::SetDuplicate { link, .. }
            | FaultAction::SetCorrupt { link, .. } => link,
        }
    }

    /// A short stable name for the action kind, used in validation messages.
    fn kind_name(&self) -> &'static str {
        match self {
            FaultAction::SetLoss { .. } => "set_loss",
            FaultAction::SetBandwidth { .. } => "set_bandwidth",
            FaultAction::SetPropagation { .. } => "set_propagation",
            FaultAction::LinkDown { .. } => "link_down",
            FaultAction::LinkUp { .. } => "link_up",
            FaultAction::SetReorder { .. } => "set_reorder",
            FaultAction::SetDuplicate { .. } => "set_duplicate",
            FaultAction::SetCorrupt { .. } => "set_corrupt",
        }
    }

    /// True when applying both actions at the same instant on the same link
    /// is ambiguous or contradictory.
    fn conflicts_with(&self, other: &FaultAction) -> bool {
        if self.link() != other.link() {
            return false;
        }
        let updown = |a: &FaultAction| {
            matches!(a, FaultAction::LinkDown { .. } | FaultAction::LinkUp { .. })
        };
        // Two knob writes of the same kind race (last-writer-wins by
        // insertion order, which the script author almost never intends),
        // and down+up at one instant is a contradiction either way round.
        self.kind_name() == other.kind_name() || (updown(self) && updown(other))
    }
}

/// A timestamped [`FaultAction`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulated time at which the action applies.
    pub at: SimTime,
    /// The change to apply.
    pub action: FaultAction,
}

/// A declarative timeline of network faults, installed as a simulator agent.
///
/// Build with [`FaultScript::at`] (events may be added in any order; they are
/// applied in time order, ties in insertion order) and activate with
/// [`FaultScript::install`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `action` at absolute time `at`.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Adds a whole blackout window: down at `from`, back up at `until`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn blackout(self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "blackout window is empty");
        self.at(from, FaultAction::LinkDown { link }).at(until, FaultAction::LinkUp { link })
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Registers the script with `sim` as an agent and schedules every event.
    /// Events timed at or before the current clock apply at the current time.
    /// Returns the agent id (useful only for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the script is invalid: an action targets a link `sim` does
    /// not have, or two actions at the same instant on the same link
    /// conflict (down+up, or two writes of the same knob whose outcome would
    /// silently depend on insertion order).
    pub fn install(mut self, sim: &mut crate::sim::Simulator) -> crate::packet::AgentId {
        self.events.sort_by_key(|e| e.at);
        let links = sim.world().link_count();
        for ev in &self.events {
            let link = ev.action.link();
            assert!(
                link < links,
                "fault script targets link {link} but the simulator has only {links} links"
            );
        }
        for (i, a) in self.events.iter().enumerate() {
            for b in &self.events[i + 1..] {
                if b.at != a.at {
                    break; // sorted: later events cannot tie with `a`
                }
                assert!(
                    !a.action.conflicts_with(&b.action),
                    "conflicting fault actions at {}: {} and {} on link {}",
                    a.at,
                    a.action.kind_name(),
                    b.action.kind_name(),
                    a.action.link()
                );
            }
        }
        let now = sim.now();
        let delays: Vec<SimDuration> =
            self.events.iter().map(|e| e.at.saturating_since(now)).collect();
        let id = sim.add_agent(Box::new(FaultScriptAgent { events: self.events }));
        let world = sim.world_mut();
        for (i, delay) in delays.into_iter().enumerate() {
            world.schedule_in(id, delay, i as u64);
        }
        id
    }
}

/// The agent a [`FaultScript`] turns into once installed.
struct FaultScriptAgent {
    events: Vec<FaultEvent>,
}

impl Agent for FaultScriptAgent {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
        // Fault scripts are not packet endpoints; routed packets are ignored.
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let ev = &self.events[token as usize];
        ctx.apply_fault(&ev.action);
    }
}

#[cfg(test)]
// Tests read back configured probabilities verbatim (no arithmetic), so
// exact float comparison is the intended strictness.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_model_draws_nothing_and_never_loses() {
        let mut imp = Impairment::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let witness = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!imp.roll_loss(&mut rng));
        }
        assert_eq!(rng, witness, "LossModel::None must not perturb the RNG stream");
    }

    #[test]
    fn iid_loss_rate_tracks_probability() {
        let mut imp = Impairment::default();
        imp.set_loss(LossModel::iid(0.3));
        let mut rng = SmallRng::seed_from_u64(2);
        let losses = (0..20_000).filter(|_| imp.roll_loss(&mut rng)).count();
        let rate = losses as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "iid loss rate {rate}");
    }

    #[test]
    fn iid_zero_probability_is_none() {
        assert_eq!(LossModel::iid(0.0), LossModel::None);
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same marginal loss rate (~10%) as an i.i.d. model, but losses
        // should arrive in runs: compare the number of loss *clusters*.
        let mut ge = Impairment::default();
        ge.set_loss(LossModel::gilbert_elliott(0.0111, 0.1, 0.0, 1.0));
        let mut iid = Impairment::default();
        iid.set_loss(LossModel::iid(0.1));

        fn clusters(imp: &mut Impairment, seed: u64, n: usize) -> (usize, usize) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (mut losses, mut clusters, mut prev) = (0usize, 0usize, false);
            for _ in 0..n {
                let lost = imp.roll_loss(&mut rng);
                if lost {
                    losses += 1;
                    if !prev {
                        clusters += 1;
                    }
                }
                prev = lost;
            }
            (losses, clusters)
        }

        let (ge_losses, ge_clusters) = clusters(&mut ge, 3, 50_000);
        let (iid_losses, iid_clusters) = clusters(&mut iid, 3, 50_000);
        let ge_rate = ge_losses as f64 / 50_000.0;
        assert!((0.05..0.2).contains(&ge_rate), "GE marginal loss rate {ge_rate}");
        // Bursts: far fewer clusters than an i.i.d. process at similar rate.
        assert!(
            (ge_clusters as f64) < 0.5 * iid_clusters as f64,
            "GE clusters {ge_clusters} vs iid clusters {iid_clusters}"
        );
        assert!(iid_losses > 0);
    }

    #[test]
    fn set_loss_resets_burst_state() {
        let mut imp = Impairment::default();
        imp.set_loss(LossModel::gilbert_elliott(1.0, 0.0, 0.0, 1.0));
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(imp.roll_loss(&mut rng), "deterministic transition to bad must lose");
        imp.set_loss(LossModel::gilbert_elliott(0.0, 0.0, 0.0, 1.0));
        assert!(!imp.roll_loss(&mut rng), "reconfigure must restart in the good state");
    }

    #[test]
    #[should_panic]
    fn iid_rejects_out_of_range() {
        let _ = LossModel::iid(1.5);
    }

    #[test]
    #[should_panic(expected = "loss probability must not be NaN")]
    fn iid_rejects_nan_with_a_clear_message() {
        let _ = LossModel::iid(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "p_bad_good must not be NaN")]
    fn gilbert_elliott_rejects_nan_with_a_clear_message() {
        let _ = LossModel::gilbert_elliott(0.1, f64::NAN, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate probability must not be NaN")]
    fn duplicate_rejects_nan_with_a_clear_message() {
        Impairment::default().set_duplicate(f64::NAN);
    }

    #[test]
    fn inactive_delivery_impairments_draw_nothing() {
        let mut imp = Impairment::default();
        let mut rng = SmallRng::seed_from_u64(9);
        let witness = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(imp.roll_reorder(&mut rng).is_none());
            assert!(!imp.roll_duplicate(&mut rng));
            assert!(!imp.roll_corrupt(&mut rng));
        }
        assert_eq!(rng, witness, "inactive impairments must not perturb the RNG stream");
    }

    #[test]
    fn reorder_jitter_is_bounded_and_tracks_probability() {
        let mut imp = Impairment::default();
        let max = SimDuration::from_millis(20);
        imp.set_reorder(ReorderModel::uniform(0.25, max));
        let mut rng = SmallRng::seed_from_u64(10);
        let mut hits = 0usize;
        for _ in 0..20_000 {
            if let Some(d) = imp.roll_reorder(&mut rng) {
                hits += 1;
                assert!(!d.is_zero() && d <= max, "jitter {d:?} out of bounds");
            }
        }
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "reorder rate {rate}");
    }

    #[test]
    fn reorder_uniform_collapses_to_none_when_inert() {
        assert_eq!(ReorderModel::uniform(0.0, SimDuration::from_millis(5)), ReorderModel::None);
        assert_eq!(ReorderModel::uniform(0.5, SimDuration::ZERO), ReorderModel::None);
    }

    #[test]
    fn duplicate_and_corrupt_rates_track_probability() {
        let mut imp = Impairment::default();
        imp.set_duplicate(0.1);
        imp.set_corrupt(0.05);
        let mut rng = SmallRng::seed_from_u64(11);
        let dups = (0..20_000).filter(|_| imp.roll_duplicate(&mut rng)).count();
        let corrupt = (0..20_000).filter(|_| imp.roll_corrupt(&mut rng)).count();
        assert!((dups as f64 / 20_000.0 - 0.1).abs() < 0.02, "dup rate {dups}");
        assert!((corrupt as f64 / 20_000.0 - 0.05).abs() < 0.02, "corrupt rate {corrupt}");
    }

    #[test]
    fn script_events_sort_on_install() {
        let s = FaultScript::new()
            .at(SimTime::from_secs_f64(2.0), FaultAction::LinkUp { link: 0 })
            .at(SimTime::from_secs_f64(1.0), FaultAction::LinkDown { link: 0 });
        assert_eq!(s.events().len(), 2);
        // Ordering is exercised end-to-end in sim-level tests; here we only
        // check the builder keeps both events.
        let s2 = s.clone().blackout(1, SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(4.0));
        assert_eq!(s2.events().len(), 4);
    }

    #[test]
    #[should_panic]
    fn blackout_rejects_empty_window() {
        let _ = FaultScript::new().blackout(
            0,
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(2.0),
        );
    }

    #[test]
    #[should_panic(expected = "targets link 3")]
    fn install_rejects_unknown_links() {
        let mut sim = crate::sim::Simulator::new(1);
        let _ = sim.add_link(crate::link::LinkConfig::new(1_000_000, SimDuration::from_millis(1)));
        FaultScript::new()
            .at(SimTime::from_secs_f64(1.0), FaultAction::LinkDown { link: 3 })
            .install(&mut sim);
    }

    #[test]
    #[should_panic(expected = "conflicting fault actions")]
    fn install_rejects_down_and_up_at_the_same_instant() {
        let mut sim = crate::sim::Simulator::new(1);
        let l = sim.add_link(crate::link::LinkConfig::new(1_000_000, SimDuration::from_millis(1)));
        let t = SimTime::from_secs_f64(2.0);
        FaultScript::new()
            .at(t, FaultAction::LinkDown { link: l })
            .at(t, FaultAction::LinkUp { link: l })
            .install(&mut sim);
    }

    #[test]
    #[should_panic(expected = "conflicting fault actions")]
    fn install_rejects_duplicate_knob_writes_at_the_same_instant() {
        let mut sim = crate::sim::Simulator::new(1);
        let l = sim.add_link(crate::link::LinkConfig::new(1_000_000, SimDuration::from_millis(1)));
        let t = SimTime::from_secs_f64(2.0);
        FaultScript::new()
            .at(t, FaultAction::SetLoss { link: l, model: LossModel::iid(0.1) })
            .at(t, FaultAction::SetLoss { link: l, model: LossModel::None })
            .install(&mut sim);
    }

    #[test]
    fn install_accepts_same_instant_actions_on_distinct_links() {
        let mut sim = crate::sim::Simulator::new(1);
        let a = sim.add_link(crate::link::LinkConfig::new(1_000_000, SimDuration::from_millis(1)));
        let b = sim.add_link(crate::link::LinkConfig::new(1_000_000, SimDuration::from_millis(1)));
        let t = SimTime::from_secs_f64(1.0);
        FaultScript::new()
            .at(t, FaultAction::SetLoss { link: a, model: LossModel::iid(0.1) })
            .at(t, FaultAction::SetLoss { link: b, model: LossModel::iid(0.2) })
            .at(t, FaultAction::SetCorrupt { link: a, p: 0.01 })
            .install(&mut sim);
        sim.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(sim.world().link(a).impairment().corrupt_p(), 0.01);
    }
}
