//! Packet arena: slab + freelist storage for in-flight packets.
//!
//! Events carry a small [`PacketSlot`] handle instead of a ~130-byte inline
//! `Packet`, which shrinks every event (cheaper queue moves) and — in pooled
//! mode — makes steady-state forwarding allocation-free: a delivered packet's
//! slab cell is recycled for the next send. The slab only ever grows to the
//! high-water mark of concurrently in-flight packets.
//!
//! Lifecycle: `stash` on schedule (send / propagation hop), `unstash` on the
//! event being consumed (delivery / link arrival). Every stashed packet is
//! unstashed exactly once — events are never dropped, only executed — so
//! cells cannot leak within a run.
//!
//! With pooling disabled (`EngineConfig::pool_packets = false`, the reference
//! engine), packets are boxed instead; behavior is byte-identical, only the
//! allocator traffic differs (pinned by `tests/sweep_determinism.rs`).

use crate::packet::Packet;

/// Handle to a packet owned by an event: either boxed (reference engine) or
/// an index into the [`PacketPool`] slab.
#[derive(Debug)]
pub(crate) enum PacketSlot {
    Boxed(Box<Packet>),
    Pooled(u32),
}

/// Slab of in-flight packets with a freelist of vacated cells.
#[derive(Debug, Default)]
pub(crate) struct PacketPool {
    slab: Vec<Option<Packet>>,
    free: Vec<u32>,
    pooled: bool,
}

impl PacketPool {
    pub fn new(pooled: bool) -> Self {
        PacketPool { slab: Vec::new(), free: Vec::new(), pooled }
    }

    /// Parks a packet and returns the handle to store in an event.
    pub fn stash(&mut self, pkt: Packet) -> PacketSlot {
        if !self.pooled {
            return PacketSlot::Boxed(Box::new(pkt));
        }
        match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(pkt);
                PacketSlot::Pooled(i)
            }
            None => match u32::try_from(self.slab.len()) {
                Ok(i) => {
                    self.slab.push(Some(pkt));
                    PacketSlot::Pooled(i)
                }
                // > 4 billion packets simultaneously in flight: fall back to
                // boxing rather than misindexing.
                Err(_) => PacketSlot::Boxed(Box::new(pkt)),
            },
        }
    }

    /// Reclaims the packet; the cell returns to the freelist.
    pub fn unstash(&mut self, slot: PacketSlot) -> Packet {
        match slot {
            PacketSlot::Boxed(b) => *b,
            PacketSlot::Pooled(i) => {
                // simlint: allow(P001, invariant: each Pooled handle is created by stash and consumed exactly once)
                let pkt = self.slab[i as usize].take().expect("pool slot double-freed");
                self.free.push(i);
                pkt
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Payload, Route};
    use crate::time::SimTime;

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            src: 0,
            size_bytes: 1500,
            sent_at: SimTime::ZERO,
            ecn_ce: false,
            hop: 0,
            corrupted: false,
            route: Route::direct(1),
            payload: Payload::Raw,
        }
    }

    #[test]
    fn pooled_cells_are_recycled() {
        let mut pool = PacketPool::new(true);
        let a = pool.stash(pkt(1));
        let b = pool.stash(pkt(2));
        assert_eq!(pool.slab.len(), 2);
        assert_eq!(pool.unstash(a).id, 1);
        // The vacated cell is reused: slab does not grow.
        let c = pool.stash(pkt(3));
        assert_eq!(pool.slab.len(), 2);
        assert_eq!(pool.unstash(b).id, 2);
        assert_eq!(pool.unstash(c).id, 3);
        assert_eq!(pool.free.len(), 2);
    }

    #[test]
    fn unpooled_mode_boxes() {
        let mut pool = PacketPool::new(false);
        let a = pool.stash(pkt(7));
        assert!(matches!(a, PacketSlot::Boxed(_)));
        assert_eq!(pool.unstash(a).id, 7);
        assert!(pool.slab.is_empty());
    }
}
