//! Short-flow ("mice") workloads: Poisson arrivals of small transfers, the
//! datacenter traffic mix of Benson et al. (IMC 2010), which the paper cites
//! for the burstiness of real fabrics.
//!
//! Agents cannot be added to a running simulation, so the generator
//! pre-samples the whole arrival process (Poisson arrivals, log-uniform
//! sizes) and returns a schedule; the caller attaches one flow per arrival
//! with the sampled start time.

use crate::pareto::exp_sample;
use netsim::SimDuration;
use rand::Rng;

/// One scheduled short flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShortFlow {
    /// Arrival (start) time.
    pub start: SimDuration,
    /// Transfer size in bytes.
    pub bytes: u64,
}

/// Parameters of the short-flow process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShortFlowConfig {
    /// Mean arrival rate, flows/second.
    pub rate_per_s: f64,
    /// Smallest flow, bytes.
    pub min_bytes: u64,
    /// Largest flow, bytes (sizes are log-uniform in `[min, max]`, the
    /// heavy-tailed shape of measured DC mice/elephant mixes).
    pub max_bytes: u64,
    /// Horizon over which arrivals are generated, seconds.
    pub horizon_s: f64,
}

impl Default for ShortFlowConfig {
    fn default() -> Self {
        ShortFlowConfig {
            rate_per_s: 20.0,
            min_bytes: 10 * 1024,
            max_bytes: 1024 * 1024,
            horizon_s: 10.0,
        }
    }
}

/// Samples the arrival schedule.
///
/// # Panics
///
/// Panics if `min_bytes == 0` or `min_bytes > max_bytes`.
pub fn short_flow_schedule<R: Rng>(cfg: &ShortFlowConfig, rng: &mut R) -> Vec<ShortFlow> {
    assert!(cfg.min_bytes > 0 && cfg.min_bytes <= cfg.max_bytes);
    let mut out = Vec::new();
    let mut t = 0.0;
    let mean_gap = 1.0 / cfg.rate_per_s;
    loop {
        t += exp_sample(rng, mean_gap);
        if t >= cfg.horizon_s {
            break;
        }
        let lo = (cfg.min_bytes as f64).ln();
        let hi = (cfg.max_bytes as f64).ln();
        let bytes = (lo + rng.gen_range(0.0..1.0) * (hi - lo)).exp() as u64;
        out.push(ShortFlow { start: SimDuration::from_secs_f64(t), bytes: bytes.max(1) });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn arrival_count_tracks_rate() {
        let mut rng = SmallRng::seed_from_u64(8);
        let cfg = ShortFlowConfig { rate_per_s: 50.0, horizon_s: 100.0, ..Default::default() };
        let sched = short_flow_schedule(&cfg, &mut rng);
        let n = sched.len() as f64;
        assert!((n - 5000.0).abs() < 300.0, "arrivals {n}");
    }

    #[test]
    fn sizes_span_the_configured_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let cfg = ShortFlowConfig { rate_per_s: 100.0, horizon_s: 50.0, ..Default::default() };
        let sched = short_flow_schedule(&cfg, &mut rng);
        assert!(sched.iter().all(|f| f.bytes >= cfg.min_bytes && f.bytes <= cfg.max_bytes));
        let small = sched.iter().filter(|f| f.bytes < 100 * 1024).count();
        let large = sched.iter().filter(|f| f.bytes >= 100 * 1024).count();
        assert!(small > 0 && large > 0, "log-uniform should cover both ends");
    }

    #[test]
    fn schedule_is_sorted_and_within_horizon() {
        let mut rng = SmallRng::seed_from_u64(10);
        let cfg = ShortFlowConfig::default();
        let sched = short_flow_schedule(&cfg, &mut rng);
        for pair in sched.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        assert!(sched.iter().all(|f| f.start.as_secs_f64() < cfg.horizon_s));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ShortFlowConfig::default();
        let a = short_flow_schedule(&cfg, &mut SmallRng::seed_from_u64(3));
        let b = short_flow_schedule(&cfg, &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
