//! Terminal sink for background traffic.

use netsim::{Agent, Ctx, Packet, SimTime};

/// Counts the raw traffic delivered to it; the endpoint for cross-traffic
/// routes.
#[derive(Debug, Default)]
pub struct Sink {
    /// Packets delivered.
    pub pkts: u64,
    /// Bytes delivered.
    pub bytes: u64,
    /// Arrival time of the most recent packet.
    pub last_arrival: Option<SimTime>,
}

impl Sink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Sink::default()
    }

    /// Mean delivered rate in bits/second over `[0, now]`.
    pub fn mean_rate_bps(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs > 0.0 {
            self.bytes as f64 * 8.0 / secs
        } else {
            0.0
        }
    }
}

impl Agent for Sink {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.pkts += 1;
        self.bytes += u64::from(pkt.size_bytes);
        self.last_arrival = Some(ctx.now());
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    #[test]
    fn sink_counts_traffic() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(1_000_000, SimDuration::ZERO));
        let sink = sim.add_agent(Box::new(Sink::new()));
        let route = Route::new(vec![l], sink);
        for _ in 0..4 {
            sim.world_mut().send_packet(sink, route.clone(), 500, Payload::Raw);
        }
        sim.run_until(SimTime::from_secs_f64(1.0));
        let s = sim.agent::<Sink>(sink);
        assert_eq!(s.pkts, 4);
        assert_eq!(s.bytes, 2000);
        assert!(s.mean_rate_bps(SimTime::from_secs_f64(1.0)) > 0.0);
    }
}
