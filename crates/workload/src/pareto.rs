//! Pareto on/off bursty cross-traffic, the Fig. 5(b) scenario driver.
//!
//! The paper: "the scenario generates on each path a bursty traffic that
//! follows Pareto pattern at rate 45 Mb/s and occurs at random intervals
//! (average 10 seconds) and with average bursty duration of 5 seconds."
//!
//! Burst durations are Pareto(α = 1.5) with the configured mean; gaps are
//! exponential with the configured mean; within a burst the source emits CBR
//! at the burst rate.

use crate::sink::Sink;
use netsim::{Agent, Ctx, LinkId, Packet, Payload, Route, SimDuration, Simulator};
use rand::Rng;
use std::sync::Arc;

const TK_TOGGLE: u64 = 1;
const TK_SEND: u64 = 2;

/// Configuration of a Pareto on/off source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParetoOnOffConfig {
    /// Emission rate during a burst, bits/second.
    pub burst_rate_bps: u64,
    /// Mean burst duration, seconds.
    pub mean_on_s: f64,
    /// Mean gap between bursts, seconds.
    pub mean_off_s: f64,
    /// Pareto shape α for burst durations (must be > 1 for a finite mean).
    pub shape: f64,
    /// Packet size, bytes.
    pub pkt_bytes: u32,
}

impl ParetoOnOffConfig {
    /// The paper's Fig. 5(b) parameters: 45 Mb/s bursts, 5 s mean duration,
    /// 10 s mean gap, α = 1.5.
    pub fn paper_fig5b() -> Self {
        ParetoOnOffConfig {
            burst_rate_bps: 45_000_000,
            mean_on_s: 5.0,
            mean_off_s: 10.0,
            shape: 1.5,
            pkt_bytes: 1500,
        }
    }
}

/// Samples a Pareto-distributed value with the given shape and mean.
pub fn pareto_sample<R: Rng>(rng: &mut R, shape: f64, mean: f64) -> f64 {
    debug_assert!(shape > 1.0, "Pareto mean requires shape > 1");
    let scale = mean * (shape - 1.0) / shape;
    let u: f64 = rng.gen_range(1e-12..1.0);
    scale / u.powf(1.0 / shape)
}

/// Samples an exponential value with the given mean.
pub fn exp_sample<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

/// The on/off bursty source agent.
#[derive(Debug)]
pub struct ParetoOnOff {
    cfg: ParetoOnOffConfig,
    route: Arc<Route>,
    on: bool,
    interval: SimDuration,
    /// Bursts begun.
    pub bursts: u64,
    /// Packets emitted.
    pub sent: u64,
}

impl ParetoOnOff {
    /// Creates the source (attach with [`attach_pareto_cross_traffic`]).
    pub fn new(route: Arc<Route>, cfg: ParetoOnOffConfig) -> Self {
        let interval =
            SimDuration::from_secs_f64(f64::from(cfg.pkt_bytes) * 8.0 / cfg.burst_rate_bps as f64);
        ParetoOnOff { cfg, route, on: false, interval, bursts: 0, sent: 0 }
    }

    /// Whether a burst is in progress.
    pub fn is_on(&self) -> bool {
        self.on
    }
}

impl Agent for ParetoOnOff {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match token {
            TK_TOGGLE => {
                if self.on {
                    // Burst ends; schedule the next one after an exponential
                    // gap.
                    self.on = false;
                    let gap = exp_sample(ctx.rng(), self.cfg.mean_off_s);
                    ctx.schedule_in(SimDuration::from_secs_f64(gap), TK_TOGGLE);
                } else {
                    // Burst begins; schedule its Pareto end and start sending.
                    self.on = true;
                    self.bursts += 1;
                    let dur = pareto_sample(ctx.rng(), self.cfg.shape, self.cfg.mean_on_s);
                    ctx.schedule_in(SimDuration::from_secs_f64(dur), TK_TOGGLE);
                    ctx.schedule_in(SimDuration::ZERO, TK_SEND);
                }
            }
            TK_SEND if self.on => {
                ctx.send(self.route.clone(), self.cfg.pkt_bytes, Payload::Raw);
                self.sent += 1;
                ctx.schedule_in(self.interval, TK_SEND);
            }
            _ => {}
        }
    }
}

/// Installs a Pareto on/off source feeding a fresh [`Sink`] across `links`.
/// The first burst is scheduled after an exponential gap (so multiple
/// sources desynchronize). Returns `(source, sink)` agent ids.
pub fn attach_pareto_cross_traffic(
    sim: &mut Simulator,
    links: Vec<LinkId>,
    cfg: ParetoOnOffConfig,
) -> (netsim::AgentId, netsim::AgentId) {
    let sink = sim.add_agent(Box::new(Sink::new()));
    let route = Route::new(links, sink);
    let src = sim.add_agent(Box::new(ParetoOnOff::new(route, cfg)));
    let first_gap = {
        let rng = sim.world_mut().rng();
        exp_sample(rng, cfg.mean_off_s)
    };
    sim.kick(src, SimDuration::from_secs_f64(first_gap), TK_TOGGLE);
    (src, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_sample_mean_converges() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| pareto_sample(&mut rng, 1.5, 5.0)).sum::<f64>() / n as f64;
        // Heavy-tailed: generous tolerance.
        assert!((mean - 5.0).abs() < 0.8, "empirical mean {mean}");
    }

    #[test]
    fn exp_sample_mean_converges() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exp_sample(&mut rng, 10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "empirical mean {mean}");
    }

    #[test]
    fn pareto_samples_exceed_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        let scale = 5.0 * 0.5 / 1.5;
        for _ in 0..1000 {
            assert!(pareto_sample(&mut rng, 1.5, 5.0) >= scale);
        }
    }

    #[test]
    fn bursts_alternate_and_deliver_traffic() {
        let mut sim = Simulator::new(9);
        let l = sim.add_link(LinkConfig::new(100_000_000, SimDuration::ZERO).queue_limit(1000));
        let (src, sink) =
            attach_pareto_cross_traffic(&mut sim, vec![l], ParetoOnOffConfig::paper_fig5b());
        sim.run_until(SimTime::from_secs_f64(120.0));
        let source = sim.agent::<ParetoOnOff>(src);
        // 120 s with ~15 s cycles: several bursts.
        assert!(source.bursts >= 3, "bursts {}", source.bursts);
        let s = sim.agent::<Sink>(sink);
        assert!(s.pkts > 1000, "pkts {}", s.pkts);
        // Duty cycle ≈ 1/3 of 45 Mb/s: mean rate should be well below the
        // burst rate but substantial.
        let rate = s.mean_rate_bps(SimTime::from_secs_f64(120.0));
        assert!(rate > 2_000_000.0 && rate < 45_000_000.0, "rate {rate}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = || {
            let mut sim = Simulator::new(5);
            let l = sim.add_link(LinkConfig::new(100_000_000, SimDuration::ZERO).queue_limit(1000));
            let (src, _) =
                attach_pareto_cross_traffic(&mut sim, vec![l], ParetoOnOffConfig::paper_fig5b());
            sim.run_until(SimTime::from_secs_f64(60.0));
            sim.agent::<ParetoOnOff>(src).sent
        };
        assert_eq!(run(), run());
    }
}
