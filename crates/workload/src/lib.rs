//! # workload — traffic generation
//!
//! Background and foreground traffic patterns for the paper's scenarios:
//!
//! * [`cbr::CbrSource`] — constant-bit-rate filler (iperf-style);
//! * [`pareto::ParetoOnOff`] — the Fig. 5(b) bursty cross-traffic: Pareto
//!   bursts at 45 Mb/s, 5 s mean duration, 10 s mean gaps;
//! * [`permutation::permutation_pairs`] — random permutation traffic
//!   matrices for the datacenter experiments;
//! * [`shortflows`] — Poisson short-flow (mice) schedules, after the DC
//!   traffic characteristics of Benson et al. (IMC 2010);
//! * [`sink::Sink`] — terminal counter for raw traffic.
//!
//! Bulk and long-lived TCP/MPTCP flows come from the `transport` crate; this
//! crate only generates non-congestion-controlled load.
//!
//! # Examples
//!
//! ```
//! use netsim::prelude::*;
//! use workload::{attach_cbr, Sink};
//!
//! let mut sim = Simulator::new(1);
//! let l = sim.add_link(LinkConfig::new(10_000_000, SimDuration::ZERO));
//! let (_src, sink) = attach_cbr(&mut sim, vec![l], 1_000_000, 1250, SimDuration::ZERO);
//! sim.run_until(SimTime::from_secs_f64(1.0));
//! assert!(sim.agent::<Sink>(sink).pkts > 90);
//! ```

pub mod cbr;
pub mod pareto;
pub mod permutation;
pub mod shortflows;
pub mod sink;

pub use cbr::{attach_cbr, CbrSource};
pub use pareto::{
    attach_pareto_cross_traffic, exp_sample, pareto_sample, ParetoOnOff, ParetoOnOffConfig,
};
pub use permutation::permutation_pairs;
pub use shortflows::{short_flow_schedule, ShortFlow, ShortFlowConfig};
pub use sink::Sink;
