//! Random permutation traffic matrices for datacenter experiments.
//!
//! The paper's htsim methodology (§VI-C1): "Each host sends a long-lived
//! MPTCP flow to another host, which is chosen at random."

use rand::seq::SliceRandom;
use rand::Rng;

/// Produces a random derangement-style pairing: every host sends to exactly
/// one other host and none sends to itself.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn permutation_pairs<R: Rng>(n: usize, rng: &mut R) -> Vec<(usize, usize)> {
    assert!(n >= 2, "need at least two hosts");
    let mut dst: Vec<usize> = (0..n).collect();
    dst.shuffle(rng);
    // Repair fixed points by swapping with a neighbour (cyclically).
    for i in 0..n {
        if dst[i] == i {
            let j = (i + 1) % n;
            dst.swap(i, j);
        }
    }
    (0..n).map(|i| (i, dst[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn no_fixed_points_and_each_dst_once() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [2usize, 3, 8, 64, 128] {
            let pairs = permutation_pairs(n, &mut rng);
            assert_eq!(pairs.len(), n);
            let mut seen = vec![false; n];
            for (src, dst) in pairs {
                assert_ne!(src, dst, "fixed point at {src} (n={n})");
                assert!(!seen[dst], "dst {dst} reused (n={n})");
                seen[dst] = true;
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = permutation_pairs(16, &mut SmallRng::seed_from_u64(7));
        let b = permutation_pairs(16, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
