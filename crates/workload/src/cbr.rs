//! Constant-bit-rate traffic source.

use netsim::{Agent, Ctx, LinkId, Packet, Payload, Route, SimDuration, Simulator};
use std::sync::Arc;

use crate::sink::Sink;

const TK_TICK: u64 = 1;

/// Emits fixed-size raw packets at a constant rate along a route.
#[derive(Debug)]
pub struct CbrSource {
    route: Arc<Route>,
    pkt_bytes: u32,
    interval: SimDuration,
    running: bool,
    /// Packets emitted.
    pub sent: u64,
}

impl CbrSource {
    /// Creates a CBR source at `rate_bps` with `pkt_bytes` packets.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` or `pkt_bytes` is zero.
    pub fn new(route: Arc<Route>, rate_bps: u64, pkt_bytes: u32) -> Self {
        assert!(rate_bps > 0 && pkt_bytes > 0);
        let interval = SimDuration::from_secs_f64(f64::from(pkt_bytes) * 8.0 / rate_bps as f64);
        CbrSource { route, pkt_bytes, interval, running: false, sent: 0 }
    }
}

impl Agent for CbrSource {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == TK_TICK {
            self.running = true;
            ctx.send(self.route.clone(), self.pkt_bytes, Payload::Raw);
            self.sent += 1;
            ctx.schedule_in(self.interval, TK_TICK);
        }
    }
}

/// Convenience: installs a CBR source feeding a fresh [`Sink`] across
/// `links`, starting after `start`. Returns `(source, sink)` agent ids.
pub fn attach_cbr(
    sim: &mut Simulator,
    links: Vec<LinkId>,
    rate_bps: u64,
    pkt_bytes: u32,
    start: SimDuration,
) -> (netsim::AgentId, netsim::AgentId) {
    let sink = sim.add_agent(Box::new(Sink::new()));
    let route = Route::new(links, sink);
    let src = sim.add_agent(Box::new(CbrSource::new(route, rate_bps, pkt_bytes)));
    sim.kick(src, start, TK_TICK);
    (src, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    #[test]
    fn cbr_hits_target_rate() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(10_000_000, SimDuration::ZERO));
        let (_src, sink) = attach_cbr(&mut sim, vec![l], 1_000_000, 1250, SimDuration::ZERO);
        sim.run_until(SimTime::from_secs_f64(10.0));
        let s = sim.agent::<Sink>(sink);
        // 1 Mb/s = 100 pkt/s of 1250 B over 10 s ≈ 1000 packets.
        assert!((s.pkts as i64 - 1000).unsigned_abs() <= 2, "pkts {}", s.pkts);
    }

    #[test]
    fn delayed_start_is_respected() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(10_000_000, SimDuration::ZERO));
        let (_src, sink) =
            attach_cbr(&mut sim, vec![l], 1_000_000, 1250, SimDuration::from_secs(5));
        sim.run_until(SimTime::from_secs_f64(4.0));
        assert_eq!(sim.agent::<Sink>(sink).pkts, 0);
        sim.run_until(SimTime::from_secs_f64(6.0));
        assert!(sim.agent::<Sink>(sink).pkts > 50);
    }
}
