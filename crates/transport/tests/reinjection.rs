//! Opportunistic reinjection + penalization: the MPTCP kernel mechanisms
//! against head-of-line blocking (Raiciu et al., NSDI 2012), as an optional
//! transport feature.

use congestion::AlgorithmKind;
use netsim::prelude::*;
use transport::{attach_flow, FlowConfig, FlowHandle, PathSpec};

/// One fast path and one painfully slow, lossy path; a small connection
/// window so the slow path's stuck packets stall the whole connection.
fn hol_scenario(reinject: bool, seed: u64) -> (Simulator, FlowHandle) {
    let mut sim = Simulator::new(seed);
    let fast_f = sim.add_link(LinkConfig::new(20_000_000, SimDuration::from_millis(5)));
    let fast_r = sim.add_link(LinkConfig::new(20_000_000, SimDuration::from_millis(5)));
    // Slow path: 500 kb/s, 100 ms, 3-packet queue — stuck and lossy.
    let slow_f =
        sim.add_link(LinkConfig::new(500_000, SimDuration::from_millis(100)).queue_limit(3));
    let slow_r = sim.add_link(LinkConfig::new(500_000, SimDuration::from_millis(100)));
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .transfer_bytes(3_000_000)
            .rcv_buf_pkts(32) // small: HoL blocking bites
            .reinjection(reinject),
        AlgorithmKind::Lia.build(2),
        &[PathSpec::new(vec![fast_f], vec![fast_r]), PathSpec::new(vec![slow_f], vec![slow_r])],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(300.0));
    (sim, flow)
}

#[test]
fn reinjection_rescues_head_of_line_blocking() {
    let (sim_off, off) = hol_scenario(false, 31);
    let (sim_on, on) = hol_scenario(true, 31);
    assert!(on.is_finished(&sim_on), "transfer with reinjection must finish");
    let t_on = on.finish_time(&sim_on).unwrap().as_secs_f64();
    let t_off = off.finish_time(&sim_off).map_or(f64::INFINITY, netsim::SimTime::as_secs_f64);
    assert!(
        t_on < 0.85 * t_off,
        "reinjection should cut completion time: {t_on:.1}s vs {t_off:.1}s"
    );
    let sender = on.sender_ref(&sim_on);
    assert!(sender.reinjections > 0, "reinjection should have fired");
    assert!(sender.subflow(1).penalties > 0, "the slow path should be penalized");
}

#[test]
fn reinjection_is_harmless_on_symmetric_paths() {
    let run = |reinject: bool| {
        let mut sim = Simulator::new(32);
        let p1_f = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(10)));
        let p1_r = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(10)));
        let p2_f = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(10)));
        let p2_r = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(10)));
        let flow = attach_flow(
            &mut sim,
            FlowConfig::new(0).transfer_bytes(4_000_000).reinjection(reinject),
            AlgorithmKind::Lia.build(2),
            &[PathSpec::new(vec![p1_f], vec![p1_r]), PathSpec::new(vec![p2_f], vec![p2_r])],
            SimDuration::ZERO,
        );
        sim.run_until(SimTime::from_secs_f64(120.0));
        assert!(flow.is_finished(&sim));
        flow.finish_time(&sim).unwrap().as_secs_f64()
    };
    let plain = run(false);
    let with = run(true);
    assert!(
        (with - plain).abs() / plain < 0.1,
        "reinjection should be near-neutral on healthy paths: {with:.2}s vs {plain:.2}s"
    );
}

#[test]
fn delivery_remains_exactly_once_with_reinjection() {
    let (sim, flow) = hol_scenario(true, 33);
    assert!(flow.is_finished(&sim));
    let pkts = flow.sender_ref(&sim).data_acked();
    assert_eq!(flow.receiver_ref(&sim).data_delivered(), pkts);
}
