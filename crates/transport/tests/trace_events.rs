//! Event-sequence tests over the `obs` trace stream: the fast-recovery exit
//! boundary (`cum_ack >= recover` must fire at *exactly* `recover`) and the
//! dead-subflow → revival control-plane ordering.

use congestion::AlgorithmKind;
use netsim::prelude::*;
use obs::{DropCause, TraceEvent};
use std::sync::{Arc, Mutex};
use transport::{attach_flow, FlowConfig, PathSpec};

/// One forward link, one reverse link.
fn duplex(sim: &mut Simulator, bps: u64, one_way: SimDuration, qlimit: usize) -> PathSpec {
    let fwd = sim.add_link(LinkConfig::new(bps, one_way).queue_limit(qlimit));
    let rev = sim.add_link(LinkConfig::new(bps, one_way).queue_limit(qlimit));
    PathSpec::new(vec![fwd], vec![rev])
}

/// A finite transfer whose entire window is wiped out by an early blackout:
/// the sender RTOs into recovery with `recover == snd_nxt == 40` and, since
/// only 40 packets exist, the cumulative ACK can never exceed 40 — so
/// `RecoveryExit` must fire when `cum_ack` equals `recover` exactly. An
/// off-by-one (`>` instead of `>=`) would emit no exit at all.
#[test]
fn recovery_exit_fires_exactly_at_recover() {
    let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulator::new(5);
    sim.set_trace_sink(Box::new(events.clone()));
    let path = duplex(&mut sim, 10_000_000, SimDuration::from_millis(10), 256);
    // Black out the forward link before anything is delivered; restore it
    // well before the RTO backoff gives up.
    FaultScript::new()
        .blackout(path.fwd[0], SimTime::from_secs_f64(0.005), SimTime::from_secs_f64(0.5))
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .transfer_pkts(40)
            .initial_cwnd(64.0)
            .rcv_buf_pkts(256)
            .dead_after_backoffs(None),
        AlgorithmKind::Reno.build(1),
        &[path],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(30.0));
    assert!(flow.is_finished(&sim), "transfer did not finish");
    drop(sim.take_trace_sink());

    let events = events.lock().unwrap();
    let rto_recover = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RecoveryEnter { recover, .. } => Some(*recover),
            _ => None,
        })
        .max()
        .expect("blackout must force a recovery episode");
    assert_eq!(rto_recover, 40, "RTO must arm recovery at snd_nxt");
    assert!(
        events.iter().any(|e| matches!(e, TraceEvent::RtoFired { .. })),
        "whole-window loss must be repaired by RTO"
    );
    let exits: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RecoveryExit { cum_ack, .. } => Some(*cum_ack),
            _ => None,
        })
        .collect();
    assert!(!exits.is_empty(), "recovery never exited");
    assert_eq!(
        *exits.last().unwrap(),
        rto_recover,
        "exit must fire when cum_ack reaches recover exactly"
    );
    // Exits and enters alternate: a second enter requires a prior exit.
    let mut in_recovery = false;
    for e in events.iter() {
        match e {
            TraceEvent::RecoveryEnter { .. } => {
                assert!(!in_recovery, "RecoveryEnter while already in recovery");
                in_recovery = true;
            }
            TraceEvent::RecoveryExit { .. } => {
                assert!(in_recovery, "RecoveryExit without a matching enter");
                in_recovery = false;
            }
            _ => {}
        }
    }
}

/// Mid-transfer blackout of path 2 (5 s → 17 s): the trace must show the
/// blackout drops, an escalating RTO backoff, exactly one `SubflowDead`, and
/// a later `SubflowRevived` — in that order — on subflow 1 only.
#[test]
fn death_and_revival_appear_in_order_in_the_trace() {
    let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulator::new(42);
    sim.set_trace_sink(Box::new(events.clone()));
    let p1 = duplex(&mut sim, 10_000_000, SimDuration::from_millis(10), 100);
    let p2 = duplex(&mut sim, 10_000_000, SimDuration::from_millis(10), 100);
    let down = SimTime::from_secs_f64(5.0);
    let up = SimTime::from_secs_f64(17.0);
    FaultScript::new()
        .blackout(p2.fwd[0], down, up)
        .blackout(p2.rev[0], down, up)
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_pkts(30_000).dead_after_backoffs(Some(3)),
        AlgorithmKind::Lia.build(2),
        &[p1, p2],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(60.0));
    assert!(flow.is_finished(&sim), "transfer did not finish over the survivor");
    drop(sim.take_trace_sink());

    let events = events.lock().unwrap();
    assert!(
        events.iter().any(|e| matches!(e, TraceEvent::Drop { cause: DropCause::Blackout, .. })),
        "blackout drops missing from trace"
    );
    let deaths: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            TraceEvent::SubflowDead { subflow, .. } => {
                assert_eq!(*subflow, 1, "only the blacked-out subflow may die");
                Some(i)
            }
            _ => None,
        })
        .collect();
    let revivals: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            TraceEvent::SubflowRevived { subflow, .. } => {
                assert_eq!(*subflow, 1, "only the dead subflow may revive");
                Some(i)
            }
            _ => None,
        })
        .collect();
    assert_eq!(deaths.len(), 1, "expected exactly one death event");
    assert_eq!(revivals.len(), 1, "expected exactly one revival event");
    assert!(deaths[0] < revivals[0], "death must precede revival");

    // The death was preceded by the escalating backoff that justified it.
    let backoffs: Vec<u32> = events[..deaths[0]]
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RtoFired { subflow: 1, backoff, .. } => Some(*backoff),
            _ => None,
        })
        .collect();
    assert!(backoffs.len() >= 3, "death requires 3 consecutive backoffs, saw {backoffs:?}");
    assert!(backoffs.windows(2).all(|w| w[1] > w[0]), "backoff must escalate: {backoffs:?}");

    // The trace agrees with the sender's own counters.
    let counters = flow.sender_ref(&sim).subflow_counters();
    assert_eq!(counters[1].deaths, 1);
    assert_eq!(counters[1].revivals, 1);
    assert!(counters[1].probes >= 1, "dead subflow never probed");
    assert_eq!(counters[0].deaths, 0);
}
