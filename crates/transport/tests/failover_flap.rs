//! Failover under a *flapping* subflow (die → revive → die) and the O(1)
//! timer discipline of the sender's RTO path.
//!
//! The flap regression: `mark_dead` used to strand every undelivered
//! sequence the dying subflow held, even ones a previous death had already
//! reinjected onto (and that were still in flight on) a live subflow. A
//! path that flapped twice could thus enqueue the same `data_seq` twice and
//! send redundant duplicates. The fix skips sequences held undelivered by
//! other live subflows; these tests pin the end-to-end behavior.

use congestion::AlgorithmKind;
use netsim::prelude::*;
use transport::{attach_flow, FlowConfig, PathSpec};

/// One forward link, one reverse link.
fn duplex(sim: &mut Simulator, bps: u64, one_way: SimDuration, qlimit: usize) -> PathSpec {
    let fwd = sim.add_link(LinkConfig::new(bps, one_way).queue_limit(qlimit));
    let rev = sim.add_link(LinkConfig::new(bps, one_way).queue_limit(qlimit));
    PathSpec::new(vec![fwd], vec![rev])
}

/// Path 2 flaps: two separate blackouts, each long enough to declare the
/// subflow dead, with a revival window between them. The transfer must
/// still complete exactly-once, with two deaths and two revivals recorded.
#[test]
fn flapping_subflow_completes_exactly_once() {
    let mut sim = Simulator::new(77);
    let p1 = duplex(&mut sim, 10_000_000, SimDuration::from_millis(10), 100);
    let p2 = duplex(&mut sim, 10_000_000, SimDuration::from_millis(10), 100);
    let mut script = FaultScript::new();
    for (down, up) in [(3.0, 8.0), (12.0, 17.0)] {
        script = script
            .blackout(p2.fwd[0], SimTime::from_secs_f64(down), SimTime::from_secs_f64(up))
            .blackout(p2.rev[0], SimTime::from_secs_f64(down), SimTime::from_secs_f64(up));
    }
    script.install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_pkts(30_000).dead_after_backoffs(Some(2)),
        AlgorithmKind::Lia.build(2),
        &[p1, p2],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(90.0));
    assert!(flow.is_finished(&sim), "transfer must survive a flapping path");

    let sender = flow.sender_ref(&sim);
    let counters = sender.subflow_counters();
    assert_eq!(counters[1].deaths, 2, "both blackouts must kill the path");
    assert_eq!(counters[1].revivals, 2, "both recoveries must revive it");
    // Exactly-once delivery at the connection level despite the flap.
    assert_eq!(flow.receiver_ref(&sim).data_delivered(), sender.data_acked());
}

/// Mid-transfer, the sender's RTO re-arms on (nearly) every cumulative ACK.
/// With slot timers that is pure state mutation: the number of live timer
/// events stays O(subflows), never O(ACKs processed).
#[test]
fn rto_rearming_keeps_live_timer_state_constant() {
    let mut sim = Simulator::new(11);
    let p1 = duplex(&mut sim, 10_000_000, SimDuration::from_millis(10), 100);
    let p2 = duplex(&mut sim, 10_000_000, SimDuration::from_millis(10), 100);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_pkts(100_000),
        AlgorithmKind::Lia.build(2),
        &[p1, p2],
        SimDuration::ZERO,
    );
    // Sample mid-transfer, well past slow start: thousands of ACKs (and
    // RTO re-arms) have happened by each checkpoint.
    for t in [2.0, 4.0, 6.0] {
        sim.run_until(SimTime::from_secs_f64(t));
        assert!(!flow.is_finished(&sim), "transfer sized to outlast the checkpoints");
        assert!(
            sim.armed_timers() <= 4,
            "armed slot timers must stay O(subflows), got {} at t={t}",
            sim.armed_timers()
        );
        assert!(
            sim.pending_events() <= 64,
            "pending events must stay O(pipe), got {} at t={t}",
            sim.pending_events()
        );
    }
    sim.run_until(SimTime::from_secs_f64(120.0));
    assert!(flow.is_finished(&sim));
}
