//! End-to-end transport tests: full sender/receiver pairs over simulated
//! links, exercising slow start, loss recovery, multipath striping, and flow
//! control.

use congestion::AlgorithmKind;
use netsim::prelude::*;
use transport::{attach_flow, FlowConfig, FlowHandle, FlowSample, PathSpec};

/// Builds a symmetric bidirectional path: one forward link, one reverse link.
fn duplex(sim: &mut Simulator, bps: u64, one_way: SimDuration, qlimit: usize) -> PathSpec {
    let fwd = sim.add_link(LinkConfig::new(bps, one_way).queue_limit(qlimit));
    let rev = sim.add_link(LinkConfig::new(bps, one_way).queue_limit(qlimit));
    PathSpec::new(vec![fwd], vec![rev])
}

fn run_single_path(
    bytes: u64,
    bps: u64,
    one_way_ms: u64,
    qlimit: usize,
    horizon_s: f64,
) -> (Simulator, FlowHandle) {
    let mut sim = Simulator::new(7);
    let path = duplex(&mut sim, bps, SimDuration::from_millis(one_way_ms), qlimit);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(bytes),
        AlgorithmKind::Reno.build(1),
        &[path],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(horizon_s));
    (sim, flow)
}

#[test]
fn bulk_transfer_completes_and_uses_most_of_the_link() {
    // 2 MB over 10 Mb/s, 10 ms one-way: ideal time ≈ 1.6 s + slow start.
    let (sim, flow) = run_single_path(2_000_000, 10_000_000, 10, 100, 30.0);
    assert!(flow.is_finished(&sim), "transfer did not finish");
    let goodput = flow.goodput_bps(&sim);
    assert!(goodput > 0.6 * 10_000_000.0, "goodput {goodput} too far below line rate");
    assert!(goodput <= 10_000_000.0 * 1.01, "goodput {goodput} exceeds line rate");
}

#[test]
fn tiny_queue_forces_losses_but_transfer_still_completes() {
    let (sim, flow) = run_single_path(1_000_000, 5_000_000, 5, 4, 60.0);
    assert!(flow.is_finished(&sim));
    let s = flow.sender_ref(&sim);
    assert!(s.total_rexmits() > 0, "expected fast retransmits with a 4-packet queue");
    // Every data packet was delivered exactly once in order at the end.
    assert_eq!(flow.receiver_ref(&sim).data_delivered(), s.data_acked());
}

#[test]
fn goodput_respects_delay_bandwidth_product_with_small_rwnd() {
    // rwnd = 10 packets, RTT = 100 ms → max ≈ 10 * 1500 B / 0.1 s = 1.2 Mb/s.
    let mut sim = Simulator::new(3);
    let path = duplex(&mut sim, 100_000_000, SimDuration::from_millis(50), 200);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(2_000_000).rcv_buf_pkts(10),
        AlgorithmKind::Reno.build(1),
        &[path],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(60.0));
    assert!(flow.is_finished(&sim));
    let goodput = flow.goodput_bps(&sim);
    let cap = 10.0 * 1500.0 * 8.0 / 0.1;
    assert!(goodput <= cap * 1.1, "goodput {goodput} exceeds rwnd-limited cap {cap}");
    assert!(goodput > cap * 0.5, "goodput {goodput} far below rwnd-limited cap {cap}");
}

#[test]
fn two_subflows_aggregate_bandwidth() {
    // Two disjoint 5 Mb/s paths: MPTCP should beat one path's 5 Mb/s.
    let mut sim = Simulator::new(11);
    let p1 = duplex(&mut sim, 5_000_000, SimDuration::from_millis(10), 100);
    let p2 = duplex(&mut sim, 5_000_000, SimDuration::from_millis(10), 100);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(4_000_000),
        AlgorithmKind::Lia.build(2),
        &[p1, p2],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(30.0));
    assert!(flow.is_finished(&sim));
    let goodput = flow.goodput_bps(&sim);
    assert!(goodput > 6_000_000.0, "aggregate goodput {goodput} should exceed one path");
    // Both subflows carried data.
    let s = flow.sender_ref(&sim);
    assert!(s.subflow(0).tx_pkts > 100);
    assert!(s.subflow(1).tx_pkts > 100);
}

#[test]
fn scheduler_prefers_low_rtt_path() {
    // Path 0: 10 ms RTT; path 1: 200 ms RTT; same rate. The lowest-SRTT
    // scheduler plus LIA's coupling should put most packets on path 0.
    let mut sim = Simulator::new(13);
    let fast = duplex(&mut sim, 10_000_000, SimDuration::from_millis(5), 100);
    let slow = duplex(&mut sim, 10_000_000, SimDuration::from_millis(100), 100);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(5_000_000),
        AlgorithmKind::Lia.build(2),
        &[fast, slow],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(60.0));
    assert!(flow.is_finished(&sim));
    let s = flow.sender_ref(&sim);
    assert!(
        s.subflow(0).tx_pkts > s.subflow(1).tx_pkts,
        "fast path {} vs slow path {}",
        s.subflow(0).tx_pkts,
        s.subflow(1).tx_pkts
    );
}

#[test]
fn long_lived_flow_keeps_sampling() {
    let mut sim = Simulator::new(17);
    let path = duplex(&mut sim, 10_000_000, SimDuration::from_millis(10), 100);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0), // no transfer bound
        AlgorithmKind::Olia.build(1),
        &[path],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(2.0));
    assert!(!flow.is_finished(&sim));
    let samples = flow.samples(&sim);
    // 2 s at 10 ms sampling ≈ 200 samples.
    assert!(samples.len() > 150, "only {} samples", samples.len());
    // Average over the second half (past slow start): should use most of the
    // 10 Mb/s link.
    let half = &samples[samples.len() / 2..];
    let avg = half.iter().map(FlowSample::total_throughput_bps).sum::<f64>() / half.len() as f64;
    assert!(avg > 5_000_000.0, "avg throughput {avg}");
    assert!(half.iter().all(|s| s.subflows[0].srtt_s > 0.019));
}

#[test]
fn losses_do_not_deadlock_even_with_severe_drops() {
    // Queue of 2 packets at the bottleneck: heavy loss, but RTO must keep the
    // transfer moving to completion.
    let (sim, flow) = run_single_path(300_000, 2_000_000, 20, 2, 120.0);
    assert!(flow.is_finished(&sim), "transfer deadlocked under heavy loss");
    assert!(flow.sender_ref(&sim).total_rexmits() > 0);
}

#[test]
fn deterministic_across_runs() {
    let (sim1, f1) = run_single_path(500_000, 5_000_000, 10, 20, 30.0);
    let (sim2, f2) = run_single_path(500_000, 5_000_000, 10, 20, 30.0);
    assert_eq!(f1.finish_time(&sim1), f2.finish_time(&sim2));
    assert_eq!(f1.sender_ref(&sim1).total_rexmits(), f2.sender_ref(&sim2).total_rexmits());
}

#[test]
fn per_algorithm_smoke_over_two_paths() {
    for kind in AlgorithmKind::ALL {
        let mut sim = Simulator::new(23);
        let p1 = duplex(&mut sim, 5_000_000, SimDuration::from_millis(10), 50);
        let p2 = duplex(&mut sim, 5_000_000, SimDuration::from_millis(30), 50);
        let flow = attach_flow(
            &mut sim,
            FlowConfig::new(0).transfer_bytes(1_000_000),
            kind.build(2),
            &[p1, p2],
            SimDuration::ZERO,
        );
        sim.run_until(SimTime::from_secs_f64(120.0));
        assert!(flow.is_finished(&sim), "{kind} did not complete the transfer");
        assert_eq!(
            flow.receiver_ref(&sim).data_delivered(),
            flow.sender_ref(&sim).data_acked(),
            "{kind} delivered/acked mismatch"
        );
    }
}

#[test]
fn halt_freezes_a_long_lived_flow_for_fluid_handoff() {
    // A long-lived (unbounded) flow is halted mid-run: it must stop sending,
    // report finished as of the halt instant, and expose per-path measured
    // rate/RTT for the fluid regime to inherit.
    let mut sim = Simulator::new(5);
    let p1 = duplex(&mut sim, 5_000_000, SimDuration::from_millis(10), 100);
    let p2 = duplex(&mut sim, 5_000_000, SimDuration::from_millis(10), 100);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0),
        AlgorithmKind::Olia.build(2),
        &[p1, p2],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(5.0));
    assert!(!flow.is_finished(&sim), "unbounded flow must not finish on its own");
    flow.halt(&mut sim);
    assert!(flow.is_finished(&sim));
    assert_eq!(flow.finish_time(&sim), Some(SimTime::from_secs_f64(5.0)));
    let sent_at_halt = flow.sender_ref(&sim).data_sent();
    let handoff = flow.handoff_state(&sim);
    assert_eq!(handoff.len(), 2);
    // Both paths carried real traffic with sane RTT estimates (one-way 10 ms
    // → RTT at least 20 ms, below a second with empty-ish queues).
    for (r, h) in handoff.iter().enumerate() {
        assert!(h.rate_pps > 50.0, "path {r} rate {} too low", h.rate_pps);
        assert!(h.srtt_s > 0.02 && h.srtt_s < 1.0, "path {r} srtt {}", h.srtt_s);
        assert!(
            h.base_rtt_s > 0.0 && h.base_rtt_s <= h.srtt_s + 1e-9,
            "path {r} base {}",
            h.base_rtt_s
        );
    }
    // The aggregate handoff rate reconstructs the measured goodput.
    let total_pps: f64 = handoff.iter().map(|h| h.rate_pps).sum();
    let goodput_pps = flow.goodput_bps(&sim) / (1500.0 * 8.0);
    assert!((total_pps - goodput_pps).abs() / goodput_pps < 0.05, "{total_pps} vs {goodput_pps}");
    // After the halt the sender goes quiet: no new data enters the network
    // and the event queue drains instead of running forever.
    sim.run_until(SimTime::from_secs_f64(30.0));
    assert_eq!(flow.sender_ref(&sim).data_sent(), sent_at_halt, "sender kept sending after halt");
    assert_eq!(sim.pending_events(), 0, "residual events must drain after halt");
    // Halting again is a no-op and keeps the original finish time.
    flow.halt(&mut sim);
    assert_eq!(flow.finish_time(&sim), Some(SimTime::from_secs_f64(5.0)));
}
