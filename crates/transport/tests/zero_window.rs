//! True zero-window flow control: a slow application read drains the
//! receive buffer far below the arrival rate, so the advertised window
//! genuinely hits zero (no floor-of-one clamp). The sender must stall, keep
//! the connection alive with backed-off persist probes, and resume when the
//! window reopens — the transfer still completes exactly once, in order.

use congestion::AlgorithmKind;
use netsim::prelude::*;
use transport::{attach_flow, FlowConfig, FlowHandle, PathSpec};

const PKTS: u64 = 40;

/// One 10 Mb/s duplex path; receive buffer of 4 packets; the app reads one
/// packet every `read_ms` (or instantly when `read_ms == 0`).
fn slow_reader(read_ms: u64) -> (Simulator, FlowHandle) {
    let mut sim = Simulator::new(42);
    let fwd = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(5)));
    let rev = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(5)));
    let mut cfg = FlowConfig::new(0)
        .transfer_pkts(PKTS)
        .rcv_buf_pkts(4)
        .min_rto(SimDuration::from_millis(50))
        .dead_after_backoffs(None);
    if read_ms > 0 {
        cfg = cfg.app_read(SimDuration::from_millis(read_ms), 1);
    }
    let flow = attach_flow(
        &mut sim,
        cfg,
        AlgorithmKind::Reno.build(1),
        &[PathSpec::new(vec![fwd], vec![rev])],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(120.0));
    (sim, flow)
}

#[test]
fn slow_app_read_stalls_the_sender_and_persist_probes_resume_it() {
    let (sim, flow) = slow_reader(50);
    let s = flow.sender_ref(&sim);
    let r = flow.receiver_ref(&sim);
    assert!(flow.is_finished(&sim), "transfer must complete despite zero-window stalls");
    assert!(s.zero_window_stalls >= 1, "the advertised window never reached zero");
    assert!(s.persist_probes >= 1, "the stall must be broken by persist probes, not luck");
    // Exactly-once, in-order delivery all the way into the application.
    assert_eq!(r.data_delivered(), PKTS);
    assert_eq!(r.app_delivered(), PKTS, "app must eventually drain every packet");
    assert_eq!(s.data_acked(), PKTS);
}

#[test]
fn persist_probe_backoff_keeps_the_probe_count_modest() {
    let (sim, flow) = slow_reader(50);
    let s = flow.sender_ref(&sim);
    // 40 packets drained at 1/50 ms ≈ 2 s of stalling. Without exponential
    // backoff a 50 ms probe timer would fire ~40 times; with backoff the
    // count stays far lower while the connection still finishes promptly.
    assert!(flow.is_finished(&sim));
    assert!(s.persist_probes < 200, "persist probes not backed off: {} probes", s.persist_probes);
    let finished = flow.finish_time(&sim).expect("finished").as_secs_f64();
    assert!(finished < 60.0, "persist recovery too slow: finished at {finished:.1}s");
}

#[test]
fn instant_app_read_never_stalls() {
    let (sim, flow) = slow_reader(0);
    let s = flow.sender_ref(&sim);
    assert!(flow.is_finished(&sim));
    assert_eq!(s.zero_window_stalls, 0, "instant drain must never advertise zero");
    assert_eq!(s.persist_probes, 0);
}

#[test]
fn receiver_buffer_full_drops_are_accounted_and_recovered() {
    // A very slow reader (one packet per 500 ms against a 50 ms probe
    // timer): early probes land while the buffer is still full and must be
    // shed with an explicit window-full drop — then re-probed until space
    // opens. The transfer still finishes with exactly-once delivery.
    let (sim, flow) = slow_reader(500);
    let r = flow.receiver_ref(&sim);
    assert!(flow.is_finished(&sim), "transfer must survive probe sheds");
    assert!(r.rwnd_dropped > 0, "a probe into a full window must be counted as a window drop");
    assert_eq!(r.app_delivered(), PKTS);
    assert_eq!(r.data_delivered(), PKTS);
}
