//! Transport stress tests: randomized link conditions and every algorithm,
//! checking the end-to-end correctness invariants that must survive any
//! loss pattern — exactly-once in-order delivery, bounded reorder buffers,
//! and no deadlock.

use congestion::AlgorithmKind;
use netsim::prelude::*;
use proptest::prelude::*;
use transport::{attach_flow, FlowConfig, PathSpec, Scheduler};

fn duplex(sim: &mut Simulator, bps: u64, delay_us: u64, q: usize) -> PathSpec {
    let fwd = sim.add_link(LinkConfig::new(bps, SimDuration::from_micros(delay_us)).queue_limit(q));
    let rev = sim.add_link(LinkConfig::new(bps, SimDuration::from_micros(delay_us)).queue_limit(q));
    PathSpec::new(vec![fwd], vec![rev])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the (tiny) queues, delays and rates: a finite transfer
    /// completes, every packet is delivered exactly once in order, and the
    /// receiver's reorder buffer never exceeds the advertised window.
    #[test]
    fn exactly_once_in_order_delivery_under_chaos(
        seed in 0u64..1000,
        q1 in 2usize..12,
        q2 in 2usize..12,
        mbps1 in 2u64..30,
        mbps2 in 2u64..30,
        d1 in 100u64..30_000,
        d2 in 100u64..30_000,
        alg_idx in 0usize..9,
        rr in any::<bool>(),
    ) {
        let kind = AlgorithmKind::ALL[alg_idx];
        let mut sim = Simulator::new(seed);
        let p1 = duplex(&mut sim, mbps1 * 1_000_000, d1, q1);
        let p2 = duplex(&mut sim, mbps2 * 1_000_000, d2, q2);
        let pkts = 600u64;
        let flow = attach_flow(
            &mut sim,
            FlowConfig::new(0)
                .transfer_pkts(pkts)
                .rcv_buf_pkts(40)
                .scheduler(if rr { Scheduler::RoundRobin } else { Scheduler::LowestSrtt })
                .min_rto(SimDuration::from_millis(50)),
            kind.build(2),
            &[p1, p2],
            SimDuration::ZERO,
        );
        sim.run_until(SimTime::from_secs_f64(600.0));
        let sender = flow.sender_ref(&sim);
        prop_assert!(sender.is_finished(), "{kind} deadlocked (seed {seed})");
        prop_assert_eq!(sender.data_acked(), pkts);
        let recv = flow.receiver_ref(&sim);
        prop_assert_eq!(recv.data_delivered(), pkts, "{}: wrong delivery count", kind);
        // rwnd accounting never went negative.
        prop_assert!(recv.rwnd_pkts() >= 1);
    }
}

#[test]
fn dctcp_on_ecn_links_sees_fewer_drops_than_reno() {
    let run = |kind: AlgorithmKind| {
        let mut sim = Simulator::new(5);
        let fwd = sim.add_link(
            LinkConfig::new(50_000_000, SimDuration::from_micros(200))
                .queue_limit(100)
                .ecn_threshold(20),
        );
        let rev = sim.add_link(LinkConfig::new(50_000_000, SimDuration::from_micros(200)));
        let flow = attach_flow(
            &mut sim,
            FlowConfig::new(0).transfer_bytes(10_000_000).min_rto(SimDuration::from_millis(20)),
            kind.build(1),
            &[PathSpec::new(vec![fwd], vec![rev])],
            SimDuration::ZERO,
        );
        sim.run_until(SimTime::from_secs_f64(120.0));
        assert!(flow.is_finished(&sim), "{kind} did not finish");
        (sim.world().dropped_pkts, flow.sender_ref(&sim).goodput_bps(sim.now()))
    };
    let (reno_drops, reno_goodput) = run(AlgorithmKind::Reno);
    let (dctcp_drops, dctcp_goodput) = run(AlgorithmKind::Dctcp);
    assert!(
        dctcp_drops < reno_drops,
        "DCTCP should avoid drops via ECN: {dctcp_drops} vs {reno_drops}"
    );
    assert!(dctcp_goodput > 0.7 * reno_goodput, "DCTCP goodput sane");
}

#[test]
fn ack_loss_on_reverse_path_does_not_stall() {
    // A 2-packet reverse queue drops many ACKs; cumulative ACKs must keep
    // the transfer alive.
    let mut sim = Simulator::new(6);
    let fwd = sim.add_link(LinkConfig::new(20_000_000, SimDuration::from_millis(2)));
    let rev = sim.add_link(LinkConfig::new(20_000_000, SimDuration::from_millis(2)).queue_limit(2));
    // Congest the reverse path with cross traffic.
    let cross_fwd = rev; // the ACK link doubles as the cross-traffic link
    let (_src, _sink) =
        workload::attach_cbr(&mut sim, vec![cross_fwd], 18_000_000, 1500, SimDuration::ZERO);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(2_000_000).min_rto(SimDuration::from_millis(50)),
        AlgorithmKind::Reno.build(1),
        &[PathSpec::new(vec![fwd], vec![rev])],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(300.0));
    assert!(flow.is_finished(&sim), "stalled under ACK loss");
}

#[test]
fn many_competing_flows_share_without_starvation() {
    let mut sim = Simulator::new(7);
    let fwd = sim.add_link(LinkConfig::new(100_000_000, SimDuration::from_millis(5)));
    let rev = sim.add_link(LinkConfig::new(100_000_000, SimDuration::from_millis(5)));
    let flows: Vec<_> = (0..16)
        .map(|i| {
            attach_flow(
                &mut sim,
                FlowConfig::new(i),
                AlgorithmKind::Reno.build(1),
                &[PathSpec::new(vec![fwd], vec![rev])],
                SimDuration::from_millis(i * 3),
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(30.0));
    let rates: Vec<f64> = flows.iter().map(|f| f.goodput_bps(&sim)).collect();
    let total: f64 = rates.iter().sum();
    assert!(total > 70e6, "aggregate {total} should use most of the link");
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rates.iter().cloned().fold(0.0f64, f64::max);
    // Jain-style sanity: no flow starves outright.
    assert!(min > max / 20.0, "starvation: min {min} max {max}");
}
