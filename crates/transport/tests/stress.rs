//! Transport stress tests: randomized link conditions and every algorithm,
//! checking the end-to-end correctness invariants that must survive any
//! loss pattern — exactly-once in-order delivery, bounded reorder buffers,
//! and no deadlock.
//!
//! The parameter grid is drawn deterministically from a seeded RNG and
//! fanned across the sweep runner (`bench_harness::runner`), one whole
//! `Simulator` per cell: the full 24-cell grid with its 600 s horizon is
//! `#[ignore]`d into the CI `--ignored` job, while a smaller smoke grid
//! keeps the invariants in the default tier-1 run. The full grid runs under
//! the crash-safe fabric (`bench_harness::fabric`) with a per-cell wall
//! deadline, so one wedged case is quarantined and reported instead of
//! hanging the whole CI job; retries stay off because the cells are
//! deterministic.

use bench_harness::fabric::{
    run_fabric_ephemeral, FabricCell, FabricOptions, Fingerprint, RetryPolicy,
};
use bench_harness::runner::{run_sweep, SweepCell};
use congestion::AlgorithmKind;
use netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use transport::{attach_flow, FlowConfig, PathSpec, Scheduler};

fn duplex(sim: &mut Simulator, bps: u64, delay_us: u64, q: usize) -> PathSpec {
    let fwd = sim.add_link(LinkConfig::new(bps, SimDuration::from_micros(delay_us)).queue_limit(q));
    let rev = sim.add_link(LinkConfig::new(bps, SimDuration::from_micros(delay_us)).queue_limit(q));
    PathSpec::new(vec![fwd], vec![rev])
}

/// One randomly-drawn stress configuration (tiny queues, asymmetric rates
/// and delays, any algorithm, either scheduler).
#[derive(Clone, Copy, Debug)]
struct StressCase {
    seed: u64,
    q1: usize,
    q2: usize,
    mbps1: u64,
    mbps2: u64,
    d1_us: u64,
    d2_us: u64,
    kind: AlgorithmKind,
    rr: bool,
}

/// Draws `n` cases from the same distributions the old proptest block used,
/// deterministically from `meta_seed`.
fn draw_cases(n: usize, meta_seed: u64) -> Vec<StressCase> {
    let mut rng = SmallRng::seed_from_u64(meta_seed);
    (0..n)
        .map(|_| StressCase {
            seed: rng.gen_range(0..1000),
            q1: rng.gen_range(2..12),
            q2: rng.gen_range(2..12),
            mbps1: rng.gen_range(2..30),
            mbps2: rng.gen_range(2..30),
            d1_us: rng.gen_range(100..30_000),
            d2_us: rng.gen_range(100..30_000),
            kind: AlgorithmKind::ALL[rng.gen_range(0..AlgorithmKind::ALL.len())],
            rr: rng.gen_bool(0.5),
        })
        .collect()
}

/// Everything a stress cell must get right, checked after the sweep joins.
#[derive(Debug, PartialEq)]
struct StressOutcome {
    finished: bool,
    acked: u64,
    delivered: u64,
    min_rwnd: u64,
}

const STRESS_PKTS: u64 = 600;

fn stress_run(c: StressCase) -> StressOutcome {
    let mut sim = Simulator::new(c.seed);
    let p1 = duplex(&mut sim, c.mbps1 * 1_000_000, c.d1_us, c.q1);
    let p2 = duplex(&mut sim, c.mbps2 * 1_000_000, c.d2_us, c.q2);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .transfer_pkts(STRESS_PKTS)
            .rcv_buf_pkts(40)
            .scheduler(if c.rr { Scheduler::RoundRobin } else { Scheduler::LowestSrtt })
            .min_rto(SimDuration::from_millis(50)),
        c.kind.build(2),
        &[p1, p2],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(600.0));
    let sender = flow.sender_ref(&sim);
    let recv = flow.receiver_ref(&sim);
    StressOutcome {
        finished: sender.is_finished(),
        acked: sender.data_acked(),
        delivered: recv.data_delivered(),
        min_rwnd: recv.rwnd_pkts(),
    }
}

/// Whatever the (tiny) queues, delays and rates: a finite transfer
/// completes, every packet is delivered exactly once in order, and the
/// receiver's rwnd accounting never goes negative.
fn assert_grid(cases: Vec<StressCase>) {
    let cells: Vec<SweepCell<StressOutcome>> = cases
        .iter()
        .map(|&c| {
            SweepCell::new(format!("{}-seed{}", c.kind, c.seed), c.seed, move || stress_run(c))
        })
        .collect();
    for (r, c) in run_sweep(cells).iter().zip(&cases) {
        assert_case(&r.output, c);
    }
}

/// Checks one completed cell against the exactly-once contract.
fn assert_case(out: &StressOutcome, c: &StressCase) {
    assert!(out.finished, "{} deadlocked ({c:?}): {out:?}", c.kind);
    assert_eq!(out.acked, STRESS_PKTS, "{c:?}");
    assert_eq!(out.delivered, STRESS_PKTS, "{}: wrong delivery count ({c:?})", c.kind);
    assert!(out.min_rwnd >= 1, "rwnd went negative ({c:?})");
}

#[test]
fn exactly_once_delivery_smoke_grid() {
    assert_grid(draw_cases(8, 0x57e55));
}

#[test]
#[ignore = "full 600 s stress grid — run via `cargo test -- --ignored` (CI ignored job)"]
fn exactly_once_in_order_delivery_under_chaos() {
    // Same contract as the smoke grid, but under the crash-safe fabric: a
    // panicking or wedged case is deadline-killed and quarantined, the
    // remaining 23 still run to completion, and the quarantine records name
    // the losers. Each simulated cell is ~seconds of wall time; 300 s of
    // budget only triggers on a genuine livelock.
    let cases = draw_cases(24, 0xC4A0);
    let cells: Vec<FabricCell<StressOutcome>> = cases
        .iter()
        .map(|&c| {
            FabricCell::new(format!("{}-seed{}", c.kind, c.seed), c.seed, move || stress_run(c))
                .config(
                    Fingerprint::new()
                        .str("stress")
                        .str(&format!("{}", c.kind))
                        .u64(c.seed)
                        .u64(c.mbps1)
                        .u64(c.mbps2),
                )
        })
        .collect();
    let opts = FabricOptions {
        deadline: Some(std::time::Duration::from_secs(300)),
        retry: RetryPolicy::none(),
        ..FabricOptions::default()
    };
    let report = run_fabric_ephemeral(cells, &opts).expect("fabric sweep failed");
    eprintln!("{}", report.counters.render());
    assert!(report.is_complete(), "{}", report.partial_note());
    for (r, c) in report.results().zip(&cases) {
        assert_case(&r.output, c);
    }
}

#[test]
fn dctcp_on_ecn_links_sees_fewer_drops_than_reno() {
    let run = |kind: AlgorithmKind| {
        let mut sim = Simulator::new(5);
        let fwd = sim.add_link(
            LinkConfig::new(50_000_000, SimDuration::from_micros(200))
                .queue_limit(100)
                .ecn_threshold(20),
        );
        let rev = sim.add_link(LinkConfig::new(50_000_000, SimDuration::from_micros(200)));
        let flow = attach_flow(
            &mut sim,
            FlowConfig::new(0).transfer_bytes(10_000_000).min_rto(SimDuration::from_millis(20)),
            kind.build(1),
            &[PathSpec::new(vec![fwd], vec![rev])],
            SimDuration::ZERO,
        );
        sim.run_until(SimTime::from_secs_f64(120.0));
        assert!(flow.is_finished(&sim), "{kind} did not finish");
        (sim.world().dropped_pkts, flow.sender_ref(&sim).goodput_bps(sim.now()))
    };
    // The two runs are independent cells; fan them out.
    let cells = vec![
        SweepCell::new("reno", 5, move || run(AlgorithmKind::Reno)),
        SweepCell::new("dctcp", 5, move || run(AlgorithmKind::Dctcp)),
    ];
    let results = run_sweep(cells);
    let (reno_drops, reno_goodput) = results[0].output;
    let (dctcp_drops, dctcp_goodput) = results[1].output;
    assert!(
        dctcp_drops < reno_drops,
        "DCTCP should avoid drops via ECN: {dctcp_drops} vs {reno_drops}"
    );
    assert!(dctcp_goodput > 0.7 * reno_goodput, "DCTCP goodput sane");
}

#[test]
fn ack_loss_on_reverse_path_does_not_stall() {
    // A 2-packet reverse queue drops many ACKs; cumulative ACKs must keep
    // the transfer alive.
    let mut sim = Simulator::new(6);
    let fwd = sim.add_link(LinkConfig::new(20_000_000, SimDuration::from_millis(2)));
    let rev = sim.add_link(LinkConfig::new(20_000_000, SimDuration::from_millis(2)).queue_limit(2));
    // Congest the reverse path with cross traffic.
    let cross_fwd = rev; // the ACK link doubles as the cross-traffic link
    let (_src, _sink) =
        workload::attach_cbr(&mut sim, vec![cross_fwd], 18_000_000, 1500, SimDuration::ZERO);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(2_000_000).min_rto(SimDuration::from_millis(50)),
        AlgorithmKind::Reno.build(1),
        &[PathSpec::new(vec![fwd], vec![rev])],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(300.0));
    assert!(flow.is_finished(&sim), "stalled under ACK loss");
}

#[test]
fn many_competing_flows_share_without_starvation() {
    let mut sim = Simulator::new(7);
    let fwd = sim.add_link(LinkConfig::new(100_000_000, SimDuration::from_millis(5)));
    let rev = sim.add_link(LinkConfig::new(100_000_000, SimDuration::from_millis(5)));
    let flows: Vec<_> = (0..16)
        .map(|i| {
            attach_flow(
                &mut sim,
                FlowConfig::new(i),
                AlgorithmKind::Reno.build(1),
                &[PathSpec::new(vec![fwd], vec![rev])],
                SimDuration::from_millis(i * 3),
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(30.0));
    let rates: Vec<f64> = flows.iter().map(|f| f.goodput_bps(&sim)).collect();
    let total: f64 = rates.iter().sum();
    assert!(total > 70e6, "aggregate {total} should use most of the link");
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rates.iter().cloned().fold(0.0f64, f64::max);
    // Jain-style sanity: no flow starves outright.
    assert!(min > max / 20.0, "starvation: min {min} max {max}");
}
