//! Property: under arbitrary combinations of loss, reordering, duplication,
//! and corruption on both directions of both paths, an MPTCP transfer still
//! completes with exactly-once, in-order delivery into the application.
//!
//! This is the transport robustness contract: impairments may slow the
//! transfer down arbitrarily, but can never duplicate, drop, or reorder
//! what the application sees.

use congestion::AlgorithmKind;
use netsim::prelude::*;
use proptest::prelude::*;
use transport::{attach_flow, FlowConfig, PathSpec};

/// Builds a two-path topology where every one of the four links carries the
/// same adversarial impairment mix, runs a fixed-size transfer, and returns
/// `(finished, data_delivered, app_delivered, data_acked)`.
#[allow(clippy::too_many_arguments)]
fn run_adversarial(
    seed: u64,
    pkts: u64,
    loss_p: f64,
    reorder_p: f64,
    reorder_max_us: u64,
    dup_p: f64,
    corrupt_p: f64,
) -> (bool, u64, u64, u64) {
    let mut sim = Simulator::new(seed);
    let mut links = Vec::new();
    for _ in 0..4 {
        let l =
            sim.add_link(LinkConfig::new(8_000_000, SimDuration::from_millis(5)).queue_limit(64));
        let imp = sim.world_mut().link_mut(l).impairment_mut();
        imp.set_loss(LossModel::iid(loss_p));
        imp.set_reorder(ReorderModel::uniform(reorder_p, SimDuration::from_micros(reorder_max_us)));
        imp.set_duplicate(dup_p);
        imp.set_corrupt(corrupt_p);
        links.push(l);
    }
    let paths = [
        PathSpec::new(vec![links[0]], vec![links[1]]),
        PathSpec::new(vec![links[2]], vec![links[3]]),
    ];
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .transfer_pkts(pkts)
            .rcv_buf_pkts(64)
            .min_rto(SimDuration::from_millis(30))
            .dead_after_backoffs(None),
        AlgorithmKind::Lia.build(2),
        &[paths[0].clone(), paths[1].clone()],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(600.0));
    let r = flow.receiver_ref(&sim);
    (
        flow.is_finished(&sim),
        r.data_delivered(),
        r.app_delivered(),
        flow.sender_ref(&sim).data_acked(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exactly-once, in-order completion survives any mix of adversarial
    /// path impairments on every link.
    #[test]
    fn transfers_complete_exactly_once_under_adversarial_impairments(
        seed in 0u64..1000,
        pkts in 50u64..250,
        loss_p in 0.0f64..0.08,
        reorder_p in 0.0f64..0.5,
        reorder_max_us in 100u64..8_000,
        dup_p in 0.0f64..0.2,
        corrupt_p in 0.0f64..0.08,
    ) {
        let (finished, data_delivered, app_delivered, data_acked) =
            run_adversarial(seed, pkts, loss_p, reorder_p, reorder_max_us, dup_p, corrupt_p);
        prop_assert!(finished, "transfer did not finish under impairments");
        prop_assert_eq!(data_delivered, pkts, "in-order delivery count wrong");
        prop_assert_eq!(app_delivered, pkts, "app-level delivery count wrong");
        prop_assert_eq!(data_acked, pkts);
    }

    /// The worst case of every impairment at once — plus a tiny receive
    /// buffer so reassembly-bound drops trigger too — still converges.
    #[test]
    fn heavy_impairments_with_tiny_buffers_still_converge(seed in 0u64..500) {
        let mut sim = Simulator::new(seed);
        let mut links = Vec::new();
        for _ in 0..4 {
            let l = sim.add_link(
                LinkConfig::new(5_000_000, SimDuration::from_millis(8)).queue_limit(16),
            );
            let imp = sim.world_mut().link_mut(l).impairment_mut();
            imp.set_loss(LossModel::iid(0.05));
            imp.set_reorder(ReorderModel::uniform(0.4, SimDuration::from_millis(4)));
            imp.set_duplicate(0.15);
            imp.set_corrupt(0.05);
            links.push(l);
        }
        let flow = attach_flow(
            &mut sim,
            FlowConfig::new(0)
                .transfer_pkts(120)
                .rcv_buf_pkts(8)
                .min_rto(SimDuration::from_millis(30))
                .dead_after_backoffs(None),
            AlgorithmKind::Olia.build(2),
            &[
                PathSpec::new(vec![links[0]], vec![links[1]]),
                PathSpec::new(vec![links[2]], vec![links[3]]),
            ],
            SimDuration::ZERO,
        );
        sim.run_until(SimTime::from_secs_f64(600.0));
        let r = flow.receiver_ref(&sim);
        prop_assert!(flow.is_finished(&sim));
        prop_assert_eq!(r.data_delivered(), 120);
        prop_assert_eq!(r.app_delivered(), 120);
    }
}
