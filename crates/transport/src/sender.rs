//! The MPTCP sender endpoint.
//!
//! One [`MptcpSender`] agent drives a whole connection: it owns every
//! subflow's sequence state, retransmission machinery, and the pluggable
//! [`MultipathCongestionControl`] algorithm.
//!
//! Loss recovery follows RFC 6675 (SACK-based): the receiver acknowledges
//! every segment individually (`for_seq` in the ACK), the sender keeps a
//! scoreboard of delivered / lost / in-flight segments, transmission is gated
//! on `pipe < cwnd`, and a segment is classified lost once the receiver has
//! seen `DupThresh` segments beyond it. This matches the SACK-enabled Linux
//! stack the paper instruments (the kernel's MPTCP v0.90 is SACK-based) and
//! avoids the RTO storms a plain NewReno model suffers after slow-start
//! overshoot. Data is striped over subflows by a lowest-SRTT-first scheduler,
//! the MPTCP kernel default.

use crate::config::{FlowConfig, Scheduler};
use crate::rtt::RttEstimator;
use crate::sample::{FlowSample, PathHandoff, SubflowSample};
use congestion::{MultipathCongestionControl, SubflowCc};
use netsim::{Agent, Ctx, Packet, Payload, Route, SimTime, TimerHandle, Watched};
use obs::{DiscardCause, RecoveryCause, SubflowCounters, TraceEvent};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Timer token: start the connection.
pub const TK_START: u64 = 1;
/// Timer token: telemetry sample tick.
const TK_SAMPLE: u64 = 2;
/// High bit marking an RTO token; subflow in bits 32..48, generation in low
/// 32 bits.
const TK_RTO_BIT: u64 = 1 << 63;
/// Bit marking a persist (zero-window probe) timer token; generation in the
/// low 32 bits. One persist timer serves the whole connection.
const TK_PERSIST_BIT: u64 = 1 << 62;

/// Duplicate threshold for loss classification (RFC 6675 DupThresh).
const DUP_THRESH: u64 = 3;

fn rto_token(subflow: usize, gen: u64) -> u64 {
    TK_RTO_BIT | ((subflow as u64) << 32) | (gen & 0xffff_ffff)
}

/// Scoreboard entry for one outstanding segment.
#[derive(Clone, Copy, Debug)]
struct Seg {
    /// Connection-level data sequence carried by this subflow sequence.
    data_seq: u64,
    /// The receiver has explicitly acknowledged this segment.
    delivered: bool,
    /// This segment currently counts toward `pipe` (a copy is believed in
    /// flight).
    in_pipe: bool,
    /// Retransmission count.
    rexmits: u32,
    /// Already counted as a proven-spurious retransmission (dup-ACK
    /// discipline: duplicated ACKs must not inflate the counter).
    spurious_counted: bool,
    /// Last (re)transmission time, for lost-retransmission detection.
    last_tx: SimTime,
}

/// Scoreboard keyed by subflow sequence number.
///
/// Subflow sequences are dense: every insert happens at `snd_nxt` (one past
/// the current tail) and `slide` removes only from the front, so a ring
/// buffer plus a base offset replaces a `BTreeMap` — per-ACK lookup, append,
/// and cumulative slide are O(1) instead of O(log w) in the window size.
#[derive(Debug, Default)]
struct SegBoard {
    /// Sequence number of `ring[0]` (meaningless while empty).
    base: u64,
    ring: VecDeque<Seg>,
}

impl SegBoard {
    fn idx(&self, seq: u64) -> Option<usize> {
        let off = usize::try_from(seq.checked_sub(self.base)?).ok()?;
        (off < self.ring.len()).then_some(off)
    }

    /// Clamps `[from, to)` to occupied ring indices.
    fn bounds(&self, from: u64, to: u64) -> (usize, usize) {
        let len = self.ring.len();
        let lo = usize::try_from(from.saturating_sub(self.base)).unwrap_or(len).min(len);
        let hi = usize::try_from(to.saturating_sub(self.base)).unwrap_or(len).min(len);
        (lo, hi.max(lo))
    }

    fn get(&self, seq: u64) -> Option<&Seg> {
        let i = self.idx(seq)?;
        self.ring.get(i)
    }

    fn get_mut(&mut self, seq: u64) -> Option<&mut Seg> {
        let i = self.idx(seq)?;
        self.ring.get_mut(i)
    }

    /// Appends at the tail; `seq` must be exactly one past the current tail
    /// (callers insert at `snd_nxt` only).
    fn insert(&mut self, seq: u64, seg: Seg) {
        if self.ring.is_empty() {
            self.base = seq;
        }
        debug_assert_eq!(u64::try_from(self.ring.len()).ok().map(|n| self.base + n), Some(seq));
        self.ring.push_back(seg);
    }

    fn first(&self) -> Option<(u64, &Seg)> {
        self.ring.front().map(|s| (self.base, s))
    }

    /// Only the `check-invariants` scoreboard audit needs this.
    #[cfg_attr(not(feature = "check-invariants"), allow(dead_code))]
    fn last_seq(&self) -> Option<u64> {
        let n = u64::try_from(self.ring.len()).ok()?;
        n.checked_sub(1).map(|last| self.base + last)
    }

    fn pop_first(&mut self) {
        if self.ring.pop_front().is_some() {
            self.base += 1;
        }
    }

    fn range(&self, from: u64, to: u64) -> impl Iterator<Item = (u64, &Seg)> {
        let (lo, hi) = self.bounds(from, to);
        let base = self.base;
        self.ring
            .range(lo..hi)
            .enumerate()
            .map(move |(i, s)| (base + u64::try_from(lo + i).unwrap_or(u64::MAX), s))
    }

    fn range_mut(&mut self, from: u64, to: u64) -> impl Iterator<Item = (u64, &mut Seg)> {
        let (lo, hi) = self.bounds(from, to);
        let base = self.base;
        self.ring
            .range_mut(lo..hi)
            .enumerate()
            .map(move |(i, s)| (base + u64::try_from(lo + i).unwrap_or(u64::MAX), s))
    }

    fn values(&self) -> impl Iterator<Item = &Seg> {
        self.ring.iter()
    }

    fn values_mut(&mut self) -> impl Iterator<Item = &mut Seg> {
        self.ring.iter_mut()
    }

    /// Only the `check-invariants` scoreboard audit needs this.
    #[cfg_attr(not(feature = "check-invariants"), allow(dead_code))]
    fn len(&self) -> usize {
        self.ring.len()
    }
}

/// Per-subflow sender state.
#[derive(Debug)]
pub struct SubflowState {
    route: Arc<Route>,
    snd_nxt: u64,
    snd_una: u64,
    in_recovery: bool,
    recover: u64,
    /// Monotonic cursor over loss-classification (`sack_high` driven).
    loss_scan: u64,
    /// Cursor over retransmission candidates within the episode.
    rexmit_cursor: u64,
    /// One past the highest sequence the receiver reports having seen.
    sack_high: u64,
    /// Estimated packets in flight (RFC 6675 pipe).
    pipe: u64,
    rtt: RttEstimator,
    rto_gen: u64,
    /// Cancellable timer slot carrying this subflow's RTO (lazily allocated
    /// on first arm). Re-arming on every cumulative ACK is O(1) with no
    /// event-queue traffic; `rto_gen` stays as a second line of staleness
    /// defense in the token itself.
    rto_timer: Option<TimerHandle>,
    backoff: u32,
    /// Declared dead after `FlowConfig::dead_after_backoffs` consecutive RTO
    /// backoffs; only revival probes are sent until the path answers again.
    dead: bool,
    /// Scoreboard: subflow sequence → segment state.
    segs: SegBoard,
    /// Counters.
    pub tx_pkts: u64,
    /// Fast (scoreboard) + RTO retransmissions.
    pub rexmits: u64,
    /// Scoreboard-driven (non-timeout) retransmissions only.
    pub fast_rexmits: u64,
    /// Retransmissions the receiver later proved unnecessary: an ACK arrived
    /// for an already-delivered, retransmitted segment. A lower bound —
    /// segments slid out by the cumulative ACK escape the check.
    pub spurious_rexmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Packets cumulatively acknowledged.
    pub acked_pkts: u64,
    /// Fast-recovery episodes entered.
    pub recoveries: u64,
    /// Times this subflow was penalized for head-of-line blocking.
    pub penalties: u64,
    /// Times this subflow was declared dead.
    pub deaths: u64,
    /// Times this subflow came back from the dead.
    pub revivals: u64,
    /// Revival probes sent while dead.
    pub probes: u64,
    /// Last penalization instant (penalize at most once per SRTT).
    last_penalty: SimTime,
    sample_prev_acked: u64,
}

impl SubflowState {
    fn new(route: Arc<Route>, cfg: &FlowConfig) -> Self {
        SubflowState {
            route,
            snd_nxt: 0,
            snd_una: 0,
            in_recovery: false,
            recover: 0,
            loss_scan: 0,
            rexmit_cursor: 0,
            sack_high: 0,
            pipe: 0,
            rtt: RttEstimator::new(cfg.min_rto),
            rto_gen: 0,
            rto_timer: None,
            backoff: 0,
            dead: false,
            segs: SegBoard::default(),
            tx_pkts: 0,
            rexmits: 0,
            fast_rexmits: 0,
            spurious_rexmits: 0,
            timeouts: 0,
            acked_pkts: 0,
            recoveries: 0,
            penalties: 0,
            deaths: 0,
            revivals: 0,
            probes: 0,
            last_penalty: SimTime::ZERO,
            sample_prev_acked: 0,
        }
    }

    /// Whether this subflow is currently declared dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether any data is outstanding.
    fn has_outstanding(&self) -> bool {
        self.snd_nxt > self.snd_una
    }

    /// Marks `seq` delivered on the scoreboard, adjusting `pipe`. Returns
    /// `true` when the segment was *already* delivered and had been
    /// retransmitted — i.e. this ACK proves a retransmission spurious.
    fn mark_delivered(&mut self, seq: u64) -> bool {
        if let Some(seg) = self.segs.get_mut(seq) {
            if !seg.delivered {
                seg.delivered = true;
                if seg.in_pipe {
                    seg.in_pipe = false;
                    self.pipe = self.pipe.saturating_sub(1);
                }
            } else if seg.rexmits > 0 && !seg.spurious_counted {
                seg.spurious_counted = true;
                return true;
            }
        }
        false
    }

    /// Classifies as lost every undelivered segment the receiver has seen
    /// `DupThresh` past (advances a monotonic cursor, so each segment is
    /// examined once). Returns how many segments were newly marked lost.
    fn advance_loss_scan(&mut self) -> u64 {
        let hi = self.sack_high.saturating_sub(DUP_THRESH);
        if hi <= self.loss_scan {
            return 0;
        }
        let mut newly_lost = 0;
        let from = self.loss_scan.max(self.snd_una);
        if from >= hi {
            self.loss_scan = hi;
            return 0;
        }
        for (_, seg) in self.segs.range_mut(from, hi) {
            if !seg.delivered && seg.in_pipe && seg.rexmits == 0 {
                seg.in_pipe = false;
                newly_lost += 1;
            }
        }
        self.pipe = self.pipe.saturating_sub(newly_lost);
        self.loss_scan = hi;
        newly_lost
    }

    /// Removes scoreboard entries below the cumulative ACK.
    fn slide(&mut self, cum_ack: u64) {
        while let Some((seq, seg)) = self.segs.first() {
            if seq >= cum_ack {
                break;
            }
            if seg.in_pipe {
                self.pipe = self.pipe.saturating_sub(1);
            }
            self.segs.pop_first();
        }
    }

    /// Finds the next retransmission candidate: a lost (classified,
    /// not-in-pipe) undelivered segment from the episode cursor, or — if none
    /// — an undelivered retransmission that has been in flight suspiciously
    /// long (a lost retransmission).
    fn next_rexmit(&mut self, now: SimTime) -> Option<u64> {
        let hi = self.sack_high.saturating_sub(DUP_THRESH).min(self.recover);
        let from = self.rexmit_cursor.max(self.snd_una);
        if from < hi {
            if let Some((seq, _)) =
                self.segs.range(from, hi).find(|(_, seg)| !seg.delivered && !seg.in_pipe)
            {
                self.rexmit_cursor = seq + 1;
                return Some(seq);
            }
        }
        if self.snd_una >= hi {
            return None;
        }
        // Lost-retransmission probe: an undelivered, already-retransmitted
        // segment that has been quiet for over 1.5 smoothed RTTs.
        let stale = self.rtt.srtt().unwrap_or(0.2) * 1.5;
        if let Some((seq, _)) = self.segs.range(self.snd_una, hi).find(|(_, seg)| {
            !seg.delivered
                && seg.rexmits > 0
                && now.saturating_since(seg.last_tx).as_secs_f64() > stale
        }) {
            return Some(seq);
        }
        None
    }
}

/// The sending endpoint of an (MP)TCP connection.
pub struct MptcpSender {
    cfg: FlowConfig,
    cc: Box<dyn MultipathCongestionControl>,
    subflows: Vec<SubflowState>,
    cc_states: Vec<SubflowCc>,
    data_next: u64,
    data_acked: u64,
    peer_rwnd: u64,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    samples: Vec<FlowSample>,
    last_sample_at: SimTime,
    /// Round-robin scheduler cursor.
    rr_next: usize,
    /// Data sequence most recently reinjected (throttles duplicates).
    last_reinject: Option<u64>,
    /// Connection-level reinjection count.
    pub reinjections: u64,
    /// Data sequences stranded on dead subflows, awaiting reinjection onto
    /// live ones (each hole queued at most once).
    reinject_queue: VecDeque<u64>,
    /// Segments reinjected because their subflow died.
    pub failover_reinjections: u64,
    /// The connection is stalled on a zero receive window: nothing
    /// outstanding, nothing sendable, persist timer armed.
    zero_window: bool,
    /// Persist-timer backoff exponent (reset on resume or data progress).
    persist_backoff: u32,
    /// Persist-timer generation (stale-fire rejection, like `rto_gen`).
    persist_gen: u64,
    /// Cancellable timer slot for the persist timer (lazily allocated).
    persist_timer: Option<TimerHandle>,
    /// The in-flight window probe, if one was materialized:
    /// `(subflow, subflow seq)`.
    probe: Option<(usize, u64)>,
    /// Times the connection entered a zero-window stall.
    pub zero_window_stalls: u64,
    /// Window probes sent by the persist timer.
    pub persist_probes: u64,
    /// Corrupted ACKs discarded unparsed.
    pub corrupt_acks: u64,
}

impl std::fmt::Debug for MptcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MptcpSender")
            .field("conn", &self.cfg.conn_id)
            .field("cc", &self.cc.name())
            .field("subflows", &self.subflows.len())
            .field("data_next", &self.data_next)
            .field("data_acked", &self.data_acked)
            .finish()
    }
}

impl MptcpSender {
    /// Creates a sender with no paths yet; add them with
    /// [`MptcpSender::add_path`] before the start timer fires.
    pub fn new(cfg: FlowConfig, cc: Box<dyn MultipathCongestionControl>) -> Self {
        let rwnd = cfg.rcv_buf_pkts;
        MptcpSender {
            cfg,
            cc,
            subflows: Vec::new(),
            cc_states: Vec::new(),
            data_next: 0,
            data_acked: 0,
            peer_rwnd: rwnd,
            started_at: None,
            finished_at: None,
            samples: Vec::new(),
            last_sample_at: SimTime::ZERO,
            rr_next: 0,
            last_reinject: None,
            reinjections: 0,
            reinject_queue: VecDeque::new(),
            failover_reinjections: 0,
            zero_window: false,
            persist_backoff: 0,
            persist_gen: 0,
            persist_timer: None,
            probe: None,
            zero_window_stalls: 0,
            persist_probes: 0,
            corrupt_acks: 0,
        }
    }

    /// Adds a subflow along `route` (which must terminate at the paired
    /// receiver).
    pub fn add_path(&mut self, route: Arc<Route>) {
        self.subflows.push(SubflowState::new(route, &self.cfg));
        let mut st = SubflowCc::new();
        st.cwnd = self.cfg.initial_cwnd;
        self.cc_states.push(st);
    }

    /// Connection configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }

    /// The congestion-control algorithm's name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Number of subflows.
    pub fn subflow_count(&self) -> usize {
        self.subflows.len()
    }

    /// Telemetry samples recorded so far.
    pub fn samples(&self) -> &[FlowSample] {
        &self.samples
    }

    /// Per-subflow congestion state (read-only).
    pub fn cc_states(&self) -> &[SubflowCc] {
        &self.cc_states
    }

    /// Per-subflow transport counters.
    pub fn subflow(&self, r: usize) -> &SubflowState {
        &self.subflows[r]
    }

    /// When the connection started sending, if it has.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// When the whole transfer was acknowledged, for finite flows.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Whether a finite transfer has completed.
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Packets of new data handed to the network so far.
    pub fn data_sent(&self) -> u64 {
        self.data_next
    }

    /// Packets cumulatively acknowledged at the connection level.
    pub fn data_acked(&self) -> u64 {
        self.data_acked
    }

    /// Total retransmissions across subflows.
    pub fn total_rexmits(&self) -> u64 {
        self.subflows.iter().map(|s| s.rexmits).sum()
    }

    /// Total RTO events across subflows.
    pub fn total_timeouts(&self) -> u64 {
        self.subflows.iter().map(|s| s.timeouts).sum()
    }

    /// Total fast-recovery episodes across subflows.
    pub fn total_recoveries(&self) -> u64 {
        self.subflows.iter().map(|s| s.recoveries).sum()
    }

    /// Per-subflow counter snapshot for the observability registry
    /// (RTO / spurious-retransmit / recovery counts per subflow).
    pub fn subflow_counters(&self) -> Vec<SubflowCounters> {
        self.subflows
            .iter()
            .enumerate()
            .map(|(i, sf)| SubflowCounters {
                conn: self.cfg.conn_id,
                subflow: i,
                rtos: sf.timeouts,
                fast_rexmits: sf.fast_rexmits,
                spurious_rexmits: sf.spurious_rexmits,
                recoveries: sf.recoveries,
                deaths: sf.deaths,
                revivals: sf.revivals,
                probes: sf.probes,
            })
            .collect()
    }

    /// Mean goodput in bits/second between start and finish (or `until` for
    /// long-lived flows).
    pub fn goodput_bps(&self, until: SimTime) -> f64 {
        let Some(start) = self.started_at else { return 0.0 };
        let end = self.finished_at.unwrap_or(until);
        let secs = end.saturating_since(start).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.data_acked as f64 * f64::from(self.cfg.mss_bytes) * 8.0 / secs
        }
    }

    /// Freezes the connection for handoff to the flow-level (fluid) regime:
    /// truncates the transfer at the data already handed to the network and
    /// marks it finished as of `now`, so every send, retransmit, persist and
    /// sampling path sees a completed flow and goes quiet. Timers already
    /// armed fire once and no-op on the finished guard, so the residual
    /// event-queue cost is bounded. Data still in flight is abandoned — the
    /// fluid regime models the flow from here on. Idempotent; a no-op on an
    /// already-finished flow.
    pub fn halt(&mut self, now: SimTime) {
        if self.finished_at.is_some() {
            return;
        }
        self.cfg.total_pkts = Some(self.data_next);
        self.finished_at = Some(now);
        self.record_sample(now);
    }

    /// Per-path measured state for the fluid handoff: lifetime-average
    /// delivery rate plus the smoothed and minimum RTT estimates. Rates use
    /// the window `[started_at, finished_at]` (or `now` while live), so call
    /// after [`MptcpSender::halt`] for a frozen measurement.
    pub fn handoff_state(&self, now: SimTime) -> Vec<PathHandoff> {
        let Some(start) = self.started_at else {
            return vec![
                PathHandoff { rate_pps: 0.0, srtt_s: 0.0, base_rtt_s: 0.0 };
                self.subflows.len()
            ];
        };
        let end = self.finished_at.unwrap_or(now);
        let secs = end.saturating_since(start).as_secs_f64();
        self.subflows
            .iter()
            .zip(&self.cc_states)
            .map(|(sf, st)| PathHandoff {
                rate_pps: if secs > 0.0 { sf.acked_pkts as f64 / secs } else { 0.0 },
                srtt_s: if st.srtt > 0.0 { st.srtt } else { 0.0 },
                base_rtt_s: if st.base_rtt.is_finite() { st.base_rtt } else { 0.0 },
            })
            .collect()
    }

    fn arm_rto(&mut self, r: usize, ctx: &mut Ctx<'_>) {
        let sf = &mut self.subflows[r];
        sf.rto_gen += 1;
        let delay = sf.rtt.rto_backed_off(sf.backoff);
        let h = *sf.rto_timer.get_or_insert_with(|| ctx.timer_slot());
        ctx.arm_timer(h, delay, rto_token(r, sf.rto_gen));
    }

    /// Disarms subflow `r`'s RTO (nothing outstanding to cover).
    fn disarm_rto(&mut self, r: usize, ctx: &mut Ctx<'_>) {
        self.subflows[r].rto_gen += 1;
        if let Some(h) = self.subflows[r].rto_timer {
            ctx.cancel_timer(h);
        }
    }

    fn transmit(&mut self, r: usize, seq: u64, retransmit: bool, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let sf = &mut self.subflows[r];
        let Some(seg) = sf.segs.get_mut(seq) else { return };
        let data_seq = seg.data_seq;
        if retransmit {
            seg.rexmits += 1;
            sf.rexmits += 1;
        } else {
            sf.tx_pkts += 1;
        }
        if !seg.in_pipe {
            seg.in_pipe = true;
            sf.pipe += 1;
        }
        seg.last_tx = now;
        // Subflow counts are tiny (one per path); the saturating fallback
        // just makes the index→wire-id conversion total.
        let subflow = u32::try_from(r).unwrap_or(u32::MAX);
        let payload = Payload::Data { conn: self.cfg.conn_id, subflow, seq, data_seq, retransmit };
        let route = self.subflows[r].route.clone();
        ctx.send(route, self.cfg.mss_bytes, payload);
    }

    fn cwnd_floor(&self, r: usize) -> u64 {
        self.cc_states[r].cwnd.floor().max(1.0) as u64
    }

    fn conn_window_limit(&self) -> u64 {
        // No floor: a peer advertising zero means zero. Progress is then the
        // persist timer's responsibility, not a clamp's.
        self.peer_rwnd.min(self.cfg.rcv_buf_pkts)
    }

    /// Whether the sender is currently stalled on a zero receive window.
    pub fn zero_window_stalled(&self) -> bool {
        self.zero_window
    }

    /// Whether unsent data remains (for finite transfers).
    fn more_data_pending(&self) -> bool {
        self.cfg.total_pkts.is_none_or(|t| self.data_next < t)
    }

    /// The live subflow with the lowest smoothed RTT (falling back to 0) —
    /// where window probes go.
    fn probe_subflow(&self) -> usize {
        let mut best = 0;
        let mut best_srtt = f64::INFINITY;
        for r in 0..self.subflows.len() {
            if self.subflows[r].dead {
                continue;
            }
            let srtt = self.subflows[r].rtt.srtt().unwrap_or(f64::MAX);
            if srtt < best_srtt {
                best = r;
                best_srtt = srtt;
            }
        }
        best
    }

    /// Enters the zero-window stall state and arms the persist timer.
    fn enter_zero_window(&mut self, ctx: &mut Ctx<'_>) {
        self.zero_window = true;
        self.zero_window_stalls += 1;
        self.persist_backoff = 0;
        ctx.emit(TraceEvent::ZeroWindowStall {
            t_ns: ctx.now().as_nanos(),
            conn: self.cfg.conn_id,
        });
        self.arm_persist(ctx);
    }

    fn arm_persist(&mut self, ctx: &mut Ctx<'_>) {
        self.persist_gen += 1;
        let r = self.probe_subflow();
        let delay = self.subflows[r].rtt.rto_backed_off(self.persist_backoff);
        let h = *self.persist_timer.get_or_insert_with(|| ctx.timer_slot());
        ctx.arm_timer(h, delay, TK_PERSIST_BIT | (self.persist_gen & 0xffff_ffff));
    }

    /// Leaves the zero-window stall: disarm the persist timer, restore RTO
    /// coverage for anything outstanding (the probe included — its loss must
    /// not deadlock the connection), and let `pump` resume.
    fn exit_zero_window(&mut self, ctx: &mut Ctx<'_>) {
        self.zero_window = false;
        self.persist_backoff = 0;
        self.persist_gen += 1; // any already-dispatched persist fire is stale
        if let Some(h) = self.persist_timer {
            ctx.cancel_timer(h);
        }
        self.probe = None;
        ctx.emit(TraceEvent::ZeroWindowResume {
            t_ns: ctx.now().as_nanos(),
            conn: self.cfg.conn_id,
            rwnd_pkts: self.peer_rwnd,
        });
        for r in 0..self.subflows.len() {
            if self.subflows[r].has_outstanding() && !self.subflows[r].dead {
                self.arm_rto(r, ctx);
            }
        }
    }

    /// Persist timer fired: send (or re-send) a one-packet window probe and
    /// re-arm with exponential backoff. Probes ride the normal transmit path
    /// but are covered by the persist timer instead of the RTO — a discarded
    /// probe elicits a pure window report, not delivery.
    fn on_persist(&mut self, gen: u64, ctx: &mut Ctx<'_>) {
        if gen != self.persist_gen & 0xffff_ffff || !self.zero_window || self.finished_at.is_some()
        {
            return; // stale timer
        }
        let (r, seq, first_send) = match self.probe {
            Some((r, seq)) => (r, seq, false),
            None => {
                // Materialize the probe: the next new data packet, charged to
                // the scoreboard like any segment so a window that reopens
                // mid-probe accounts for it normally.
                let r = self.probe_subflow();
                let seq = self.subflows[r].snd_nxt;
                let data_seq = self.data_next;
                self.subflows[r].segs.insert(
                    seq,
                    Seg {
                        data_seq,
                        delivered: false,
                        in_pipe: false,
                        rexmits: 0,
                        spurious_counted: false,
                        last_tx: ctx.now(),
                    },
                );
                self.subflows[r].snd_nxt += 1;
                self.data_next += 1;
                self.probe = Some((r, seq));
                (r, seq, true)
            }
        };
        self.persist_probes += 1;
        ctx.emit(TraceEvent::ZeroWindowProbe {
            t_ns: ctx.now().as_nanos(),
            conn: self.cfg.conn_id,
            subflow: r,
            backoff: self.persist_backoff,
        });
        self.transmit(r, seq, !first_send, ctx);
        self.persist_backoff = (self.persist_backoff + 1).min(16);
        self.arm_persist(ctx);
    }

    /// The transmission pump: repair classified losses first, then stripe new
    /// data over subflows with pipe space, all gated on `pipe < cwnd` and the
    /// connection-level receive window.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.started_at.is_none() || self.finished_at.is_some() {
            return;
        }
        let now = ctx.now();
        // 1. Loss repair per subflow (dead subflows only probe; see on_rto).
        for r in 0..self.subflows.len() {
            if !self.subflows[r].in_recovery || self.subflows[r].dead {
                continue;
            }
            let wnd = self.cwnd_floor(r);
            while self.subflows[r].pipe < wnd {
                match self.subflows[r].next_rexmit(now) {
                    Some(seq) => {
                        self.subflows[r].fast_rexmits += 1;
                        ctx.emit(TraceEvent::FastRexmit {
                            t_ns: now.as_nanos(),
                            conn: self.cfg.conn_id,
                            subflow: r,
                            seq,
                        });
                        self.transmit(r, seq, true, ctx);
                        self.arm_rto(r, ctx);
                    }
                    None => break,
                }
            }
        }
        // 2. Failover: re-send data stranded on dead subflows over live ones.
        self.drain_reinject_queue(ctx);
        // 3. New data via the configured packet scheduler.
        loop {
            let outstanding = self.data_next - self.data_acked;
            let limit = self.conn_window_limit();
            if outstanding >= limit {
                // True zero-window stall: the peer advertises nothing, we
                // have nothing in flight to elicit an ACK, yet data remains.
                // Without a probe the connection deadlocks — enter persist.
                if limit == 0 && outstanding == 0 && self.more_data_pending() && !self.zero_window {
                    self.enter_zero_window(ctx);
                }
                if self.cfg.reinjection {
                    self.try_reinject(ctx);
                }
                return;
            }
            if let Some(total) = self.cfg.total_pkts {
                if self.data_next >= total {
                    return;
                }
            }
            let n = self.subflows.len();
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                let r = match self.cfg.scheduler {
                    Scheduler::LowestSrtt => i,
                    Scheduler::RoundRobin => (self.rr_next + i) % n,
                };
                if !self.cc_states[r].active {
                    continue;
                }
                if self.subflows[r].pipe >= self.cwnd_floor(r) {
                    continue;
                }
                match self.cfg.scheduler {
                    Scheduler::RoundRobin => {
                        best = Some((r, 0.0));
                        break;
                    }
                    Scheduler::LowestSrtt => {
                        let srtt = self.subflows[r].rtt.srtt().unwrap_or(0.0);
                        match best {
                            Some((_, s)) if s <= srtt => {}
                            _ => best = Some((r, srtt)),
                        }
                    }
                }
            }
            let Some((r, _)) = best else { return };
            self.rr_next = (r + 1) % n.max(1);
            let was_idle = !self.subflows[r].has_outstanding();
            let seq = self.subflows[r].snd_nxt;
            let data_seq = self.data_next;
            self.subflows[r].segs.insert(
                seq,
                Seg {
                    data_seq,
                    delivered: false,
                    in_pipe: false,
                    rexmits: 0,
                    spurious_counted: false,
                    last_tx: now,
                },
            );
            self.subflows[r].snd_nxt += 1;
            self.data_next += 1;
            ctx.emit(TraceEvent::SchedulerPick {
                t_ns: now.as_nanos(),
                conn: self.cfg.conn_id,
                subflow: r,
                data_seq,
            });
            self.transmit(r, seq, false, ctx);
            if was_idle {
                self.arm_rto(r, ctx);
            }
        }
    }

    /// Opportunistic reinjection + penalization: when the connection window
    /// is exhausted but another subflow has pipe space, the segment the data
    /// ACK is waiting for (stuck at some subflow's head) is re-sent on the
    /// fastest subflow with space, and the blocking subflow's window is
    /// halved (at most once per SRTT) — the MPTCP kernel's HoL-blocking
    /// countermeasures.
    fn try_reinject(&mut self, ctx: &mut Ctx<'_>) {
        let target = self.data_acked; // the connection-level hole
        if self.last_reinject == Some(target) || self.finished_at.is_some() {
            return;
        }
        // Which subflow holds the blocking segment at its head?
        let Some(rb) = (0..self.subflows.len()).find(|&k| {
            let sf = &self.subflows[k];
            sf.has_outstanding()
                && sf
                    .segs
                    .get(sf.snd_una)
                    .is_some_and(|seg| seg.data_seq == target && !seg.delivered)
        }) else {
            return;
        };
        // Fastest other subflow with pipe space.
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.subflows.len() {
            if r == rb || !self.cc_states[r].active {
                continue;
            }
            if self.subflows[r].pipe >= self.cwnd_floor(r) {
                continue;
            }
            let srtt = self.subflows[r].rtt.srtt().unwrap_or(f64::MAX);
            match best {
                Some((_, s)) if s <= srtt => {}
                _ => best = Some((r, srtt)),
            }
        }
        let Some((r, _)) = best else { return };
        let now = ctx.now();
        // Reinject the blocking data on the fast subflow under a fresh
        // subflow sequence number.
        let seq = self.subflows[r].snd_nxt;
        self.subflows[r].segs.insert(
            seq,
            Seg {
                data_seq: target,
                delivered: false,
                in_pipe: false,
                rexmits: 0,
                spurious_counted: false,
                last_tx: now,
            },
        );
        self.subflows[r].snd_nxt += 1;
        self.transmit(r, seq, false, ctx);
        self.arm_rto(r, ctx);
        self.last_reinject = Some(target);
        self.reinjections += 1;
        // Penalize the blocker.
        let srtt = self.subflows[rb].rtt.srtt().unwrap_or(0.2);
        if now.saturating_since(self.subflows[rb].last_penalty).as_secs_f64() > srtt {
            congestion::common::halve(&mut self.cc_states[rb]);
            self.subflows[rb].last_penalty = now;
            self.subflows[rb].penalties += 1;
        }
    }

    /// The lowest-SRTT live subflow with pipe space, if any.
    fn live_subflow_with_space(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.subflows.len() {
            if self.subflows[r].dead || !self.cc_states[r].active {
                continue;
            }
            if self.subflows[r].pipe >= self.cwnd_floor(r) {
                continue;
            }
            let srtt = self.subflows[r].rtt.srtt().unwrap_or(f64::MAX);
            match best {
                Some((_, s)) if s <= srtt => {}
                _ => best = Some((r, srtt)),
            }
        }
        best.map(|(r, _)| r)
    }

    /// Re-sends data sequences stranded on dead subflows over live ones, as
    /// window space allows. Each hole leaves the queue exactly once; holes
    /// the connection has meanwhile acknowledged are discarded.
    fn drain_reinject_queue(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        while let Some(&data_seq) = self.reinject_queue.front() {
            if data_seq < self.data_acked {
                self.reinject_queue.pop_front();
                continue;
            }
            let Some(r) = self.live_subflow_with_space() else { return };
            self.reinject_queue.pop_front();
            let seq = self.subflows[r].snd_nxt;
            self.subflows[r].segs.insert(
                seq,
                Seg {
                    data_seq,
                    delivered: false,
                    in_pipe: false,
                    rexmits: 0,
                    spurious_counted: false,
                    last_tx: now,
                },
            );
            self.subflows[r].snd_nxt += 1;
            self.transmit(r, seq, false, ctx);
            self.arm_rto(r, ctx);
            self.failover_reinjections += 1;
        }
    }

    /// Declares subflow `r` dead: the scheduler skips it, every undelivered
    /// data sequence it holds is queued for reinjection onto live subflows,
    /// and its subsequent RTOs send only revival probes.
    fn mark_dead(&mut self, r: usize) {
        let data_acked = self.data_acked;
        {
            let sf = &mut self.subflows[r];
            sf.dead = true;
            sf.deaths += 1;
        }
        self.cc_states[r].active = false;
        // Data already reinjected onto (and still carried by) another live
        // subflow is NOT stranded — a flapping subflow (die → revive → die)
        // must not enqueue the same data_seq a second time while the first
        // reinjection is still in flight elsewhere.
        let mut held_live: BTreeSet<u64> = BTreeSet::new();
        for (i, sf) in self.subflows.iter().enumerate() {
            if i == r || sf.dead {
                continue;
            }
            held_live.extend(
                sf.segs
                    .values()
                    .filter(|seg| !seg.delivered && seg.data_seq >= data_acked)
                    .map(|seg| seg.data_seq),
            );
        }
        let stranded: BTreeSet<u64> = self.subflows[r]
            .segs
            .values()
            .filter(|seg| {
                !seg.delivered && seg.data_seq >= data_acked && !held_live.contains(&seg.data_seq)
            })
            .map(|seg| seg.data_seq)
            .collect();
        for d in stranded {
            if !self.reinject_queue.contains(&d) {
                self.reinject_queue.push_back(d);
            }
        }
    }

    /// Revives subflow `r` after a probe was acknowledged: fresh RTT
    /// estimator, fresh congestion state (slow start), and recovery armed so
    /// the subflow-level backlog retransmits under the new window.
    fn revive(&mut self, r: usize) {
        let min_rto = self.cfg.min_rto;
        let sf = &mut self.subflows[r];
        sf.dead = false;
        sf.revivals += 1;
        sf.backoff = 0;
        sf.rtt = RttEstimator::new(min_rto);
        sf.in_recovery = true;
        sf.recover = sf.snd_nxt;
        sf.rexmit_cursor = sf.snd_una;
        sf.sack_high = sf.sack_high.max(sf.snd_nxt);
        sf.loss_scan = sf.snd_una;
        let mut st = SubflowCc::new();
        st.cwnd = self.cfg.initial_cwnd;
        self.cc_states[r] = st;
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ack(
        &mut self,
        r: usize,
        cum_ack: u64,
        sack_high: u64,
        for_seq: Option<u64>,
        data_ack: u64,
        rwnd_pkts: u64,
        ecn_echo: bool,
        ts_echo: SimTime,
        ctx: &mut Ctx<'_>,
    ) {
        if r >= self.subflows.len() {
            return; // stray ACK for an unknown subflow
        }
        self.peer_rwnd = rwnd_pkts;
        let data_ack_advanced = data_ack > self.data_acked;
        self.data_acked = self.data_acked.max(data_ack);
        if self.zero_window {
            if self.peer_rwnd > 0 {
                // The window reopened — every persist probe elicits a window
                // report, so this arrives even when the probe data itself
                // was discarded at the receiver.
                self.exit_zero_window(ctx);
            } else if data_ack_advanced {
                // Still closed but making progress: restart the backoff, and
                // if the probe itself was delivered let the next fire probe
                // with fresh data — one packet squeezes through per probe.
                self.persist_backoff = 0;
                if self.data_acked >= self.data_next {
                    self.probe = None;
                }
            }
        }

        // A dead subflow whose probe moved the cumulative ACK is reachable
        // again: revive it (slow start, fresh RTT state) before this ACK's
        // sample feeds the estimators.
        if self.subflows[r].dead && cum_ack > self.subflows[r].snd_una {
            let was_in_recovery = self.subflows[r].in_recovery;
            self.revive(r);
            let t_ns = ctx.now().as_nanos();
            ctx.emit(TraceEvent::SubflowRevived { t_ns, conn: self.cfg.conn_id, subflow: r });
            if !was_in_recovery {
                ctx.emit(TraceEvent::RecoveryEnter {
                    t_ns,
                    conn: self.cfg.conn_id,
                    subflow: r,
                    recover: self.subflows[r].recover,
                    cause: RecoveryCause::Revival,
                });
            }
        }

        // RTT sample from the receiver's echo of the segment timestamp:
        // immune to retransmission ambiguity (Karn's rule).
        let rtt_s = ctx.now().saturating_since(ts_echo).as_secs_f64();
        if rtt_s > 0.0 {
            self.subflows[r].rtt.observe(rtt_s);
            self.cc_states[r].observe_rtt(rtt_s);
        }

        // Scoreboard updates. `for_seq: None` is a pure window report (e.g.
        // the reply to a discarded probe): no segment was delivered.
        let spurious = {
            let sf = &mut self.subflows[r];
            sf.sack_high = sf.sack_high.max(sack_high);
            match for_seq {
                Some(seq) => sf.mark_delivered(seq),
                None => false,
            }
        };
        if spurious {
            self.subflows[r].spurious_rexmits += 1;
            ctx.emit(TraceEvent::SpuriousRexmit {
                t_ns: ctx.now().as_nanos(),
                conn: self.cfg.conn_id,
                subflow: r,
                seq: for_seq.unwrap_or(0),
            });
        }
        let newly_lost = self.subflows[r].advance_loss_scan();

        let snd_una = self.subflows[r].snd_una;
        if cum_ack > snd_una {
            let newly = cum_ack - snd_una;
            {
                let sf = &mut self.subflows[r];
                sf.acked_pkts += newly;
                sf.slide(cum_ack);
                sf.snd_una = cum_ack;
                sf.backoff = 0;
            }
            if self.subflows[r].in_recovery && cum_ack >= self.subflows[r].recover {
                self.subflows[r].in_recovery = false;
                ctx.emit(TraceEvent::RecoveryExit {
                    t_ns: ctx.now().as_nanos(),
                    conn: self.cfg.conn_id,
                    subflow: r,
                    cum_ack,
                });
            }
            if !self.subflows[r].in_recovery {
                let cwnd_before = self.cc_states[r].cwnd;
                self.cc.on_ack(r, &mut self.cc_states, newly, ecn_echo);
                self.emit_cwnd_change(r, cwnd_before, ctx);
            }
            if self.subflows[r].has_outstanding() {
                self.arm_rto(r, ctx);
            } else {
                // Nothing outstanding: cancel the timer slot (and bump the
                // generation so any already-dispatched fire is stale).
                self.disarm_rto(r, ctx);
            }
        }

        // Enter fast recovery when fresh losses are classified outside an
        // episode (the congestion response fires once per episode).
        if newly_lost > 0 && !self.subflows[r].in_recovery {
            let sf = &mut self.subflows[r];
            sf.in_recovery = true;
            sf.recover = sf.snd_nxt;
            sf.rexmit_cursor = sf.snd_una;
            sf.recoveries += 1;
            ctx.emit(TraceEvent::RecoveryEnter {
                t_ns: ctx.now().as_nanos(),
                conn: self.cfg.conn_id,
                subflow: r,
                recover: self.subflows[r].recover,
                cause: RecoveryCause::FastRetransmit,
            });
            let cwnd_before = self.cc_states[r].cwnd;
            self.cc.on_loss(r, &mut self.cc_states);
            self.emit_cwnd_change(r, cwnd_before, ctx);
        }

        if let Some(total) = self.cfg.total_pkts {
            if self.data_acked >= total && self.finished_at.is_none() {
                self.finished_at = Some(ctx.now());
                self.record_sample(ctx.now());
            }
        }
        self.pump(ctx);
    }

    fn on_rto(&mut self, r: usize, gen: u64, ctx: &mut Ctx<'_>) {
        let sf = &self.subflows[r];
        if gen != sf.rto_gen & 0xffff_ffff || !sf.has_outstanding() || self.finished_at.is_some() {
            return; // stale timer
        }
        if sf.dead {
            // Revival probe: retransmit the head at the frozen backed-off
            // RTO. An answering ACK revives the subflow (see on_ack); the
            // congestion response does not fire again for a dead path.
            self.subflows[r].probes += 1;
            let head = self.subflows[r].snd_una;
            self.transmit(r, head, true, ctx);
            self.arm_rto(r, ctx);
            return;
        }
        let was_in_recovery = self.subflows[r].in_recovery;
        {
            let sf = &mut self.subflows[r];
            sf.timeouts += 1;
            sf.backoff = (sf.backoff + 1).min(16);
            // RTO: every outstanding segment is presumed lost; pipe resets.
            for seg in sf.segs.values_mut() {
                seg.in_pipe = false;
            }
            sf.pipe = 0;
            sf.in_recovery = true;
            sf.recover = sf.snd_nxt;
            sf.rexmit_cursor = sf.snd_una;
            sf.recoveries += 1;
            // Let the head be retransmitted even if the receiver never saw
            // anything past it.
            sf.sack_high = sf.sack_high.max(sf.snd_nxt);
            sf.loss_scan = sf.snd_una;
        }
        let t_ns = ctx.now().as_nanos();
        ctx.emit(TraceEvent::RtoFired {
            t_ns,
            conn: self.cfg.conn_id,
            subflow: r,
            backoff: self.subflows[r].backoff,
        });
        if !was_in_recovery {
            ctx.emit(TraceEvent::RecoveryEnter {
                t_ns,
                conn: self.cfg.conn_id,
                subflow: r,
                recover: self.subflows[r].recover,
                cause: RecoveryCause::Rto,
            });
        }
        let cwnd_before = self.cc_states[r].cwnd;
        self.cc.on_timeout(r, &mut self.cc_states);
        self.emit_cwnd_change(r, cwnd_before, ctx);
        let head = self.subflows[r].snd_una;
        self.transmit(r, head, true, ctx);
        self.subflows[r].rexmit_cursor = head + 1;
        self.arm_rto(r, ctx);
        // Graceful degradation: enough consecutive backoffs without forward
        // progress and the subflow is declared dead — its stranded data moves
        // to live subflows right away (the head retransmit above doubles as
        // the first revival probe).
        if let Some(k) = self.cfg.dead_after_backoffs {
            if self.subflows[r].backoff >= k {
                self.mark_dead(r);
                ctx.emit(TraceEvent::SubflowDead {
                    t_ns: ctx.now().as_nanos(),
                    conn: self.cfg.conn_id,
                    subflow: r,
                });
                self.pump(ctx);
            }
        }
    }

    /// Emits a `CwndChange` event when the algorithm actually moved subflow
    /// `r`'s window across the preceding call.
    fn emit_cwnd_change(&mut self, r: usize, cwnd_before: f64, ctx: &mut Ctx<'_>) {
        let cwnd_pkts = self.cc_states[r].cwnd;
        // Change detection, not numeric comparison: any bit-level movement of
        // the window must produce an event, so no epsilon applies.
        #[allow(clippy::float_cmp)]
        if cwnd_pkts != cwnd_before {
            ctx.emit(TraceEvent::CwndChange {
                t_ns: ctx.now().as_nanos(),
                conn: self.cfg.conn_id,
                subflow: r,
                cwnd_pkts,
            });
        }
    }

    fn record_sample(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_sample_at).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        let mss_bits = f64::from(self.cfg.mss_bytes) * 8.0;
        let finished = self.finished_at.is_some();
        let subflows = self
            .subflows
            .iter_mut()
            .zip(&self.cc_states)
            .map(|(sf, st)| {
                let delta = sf.acked_pkts - sf.sample_prev_acked;
                sf.sample_prev_acked = sf.acked_pkts;
                SubflowSample {
                    throughput_bps: delta as f64 * mss_bits / dt,
                    srtt_s: if st.srtt > 0.0 { st.srtt } else { 0.0 },
                    base_rtt_s: if st.base_rtt.is_finite() { st.base_rtt } else { 0.0 },
                    cwnd_pkts: st.cwnd,
                    active: st.active && !finished,
                }
            })
            .collect();
        self.samples.push(FlowSample { at: now, interval_s: dt, subflows });
        self.last_sample_at = now;
    }

    /// Online self-check for the invariant checker: sequencing and window
    /// bounds every call, plus a full scoreboard recount when `deep` (the
    /// caller throttles deep passes — they are O(segs)).
    #[cfg(feature = "check-invariants")]
    pub fn check_invariants(&self, deep: bool) -> Result<(), String> {
        let conn = self.cfg.conn_id;
        if self.data_acked > self.data_next {
            return Err(format!(
                "conn {conn}: data_acked {} ran past data_next {}",
                self.data_acked, self.data_next
            ));
        }
        for (r, (sf, st)) in self.subflows.iter().zip(&self.cc_states).enumerate() {
            if !st.cwnd.is_finite() || st.cwnd <= 0.0 {
                return Err(format!("conn {conn} sf{r}: cwnd degenerate: {}", st.cwnd));
            }
            if sf.snd_una > sf.snd_nxt {
                return Err(format!(
                    "conn {conn} sf{r}: snd_una {} past snd_nxt {}",
                    sf.snd_una, sf.snd_nxt
                ));
            }
            if sf.pipe as usize > sf.segs.len() {
                return Err(format!(
                    "conn {conn} sf{r}: pipe {} exceeds scoreboard size {}",
                    sf.pipe,
                    sf.segs.len()
                ));
            }
            if deep {
                let in_pipe = sf.segs.values().filter(|s| s.in_pipe).count() as u64;
                if in_pipe != sf.pipe {
                    return Err(format!(
                        "conn {conn} sf{r}: pipe {} != scoreboard recount {in_pipe}",
                        sf.pipe
                    ));
                }
                if let Some(s) = sf.segs.values().find(|s| s.delivered && s.in_pipe) {
                    return Err(format!(
                        "conn {conn} sf{r}: delivered segment still in pipe: {s:?}"
                    ));
                }
                if let Some((first, _)) = sf.segs.first() {
                    if first < sf.snd_una {
                        return Err(format!(
                            "conn {conn} sf{r}: scoreboard entry {first} below snd_una {}",
                            sf.snd_una
                        ));
                    }
                }
                if let Some(last) = sf.segs.last_seq() {
                    if last >= sf.snd_nxt {
                        return Err(format!(
                            "conn {conn} sf{r}: scoreboard entry {last} at/past snd_nxt {}",
                            sf.snd_nxt
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Watched for MptcpSender {
    fn progress(&self) -> u64 {
        self.data_acked
    }

    fn in_flight(&self) -> bool {
        self.started_at.is_some() && self.finished_at.is_none()
    }

    fn diagnostics(&self) -> String {
        let subflows = self
            .subflows
            .iter()
            .zip(&self.cc_states)
            .enumerate()
            .map(|(i, (sf, st))| {
                format!(
                    "sf{i}[{}cwnd={:.1} pipe={} una={} nxt={} backoff={} rto={:.3}s]",
                    if sf.dead { "DEAD " } else { "" },
                    st.cwnd,
                    sf.pipe,
                    sf.snd_una,
                    sf.snd_nxt,
                    sf.backoff,
                    sf.rtt.rto_backed_off(sf.backoff).as_secs_f64(),
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "conn {} cc={} acked={}/{} {}",
            self.cfg.conn_id,
            self.cc.name(),
            self.data_acked,
            self.cfg.total_pkts.map_or_else(|| "∞".into(), |t| t.to_string()),
            subflows
        )
    }
}

impl Agent for MptcpSender {
    fn watched(&self) -> Option<&dyn Watched> {
        Some(self)
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.corrupted {
            // Checksum failure: the ACK's fields cannot be trusted, so it is
            // discarded unparsed.
            self.corrupt_acks += 1;
            ctx.emit(TraceEvent::SegDiscard {
                t_ns: ctx.now().as_nanos(),
                conn: self.cfg.conn_id,
                pkt_id: pkt.id,
                cause: DiscardCause::Corrupt,
            });
            return;
        }
        if let Payload::Ack {
            conn,
            subflow,
            cum_ack,
            sack_high,
            for_seq,
            data_ack,
            rwnd_pkts,
            ecn_echo,
            ts_echo,
        } = pkt.payload
        {
            if conn == self.cfg.conn_id {
                self.on_ack(
                    subflow as usize,
                    cum_ack,
                    sack_high,
                    for_seq,
                    data_ack,
                    rwnd_pkts,
                    ecn_echo,
                    ts_echo,
                    ctx,
                );
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token & TK_RTO_BIT != 0 {
            let r = ((token >> 32) & 0x3fff_ffff) as usize;
            let gen = token & 0xffff_ffff;
            if r < self.subflows.len() {
                self.on_rto(r, gen, ctx);
            }
        } else if token & TK_PERSIST_BIT != 0 {
            self.on_persist(token & 0xffff_ffff, ctx);
        } else if token == TK_START {
            if self.started_at.is_none() {
                assert!(!self.subflows.is_empty(), "sender started with no paths");
                self.started_at = Some(ctx.now());
                self.last_sample_at = ctx.now();
                self.pump(ctx);
                ctx.schedule_in(self.cfg.sample_every, TK_SAMPLE);
            }
        } else if token == TK_SAMPLE && self.finished_at.is_none() {
            self.record_sample(ctx.now());
            ctx.schedule_in(self.cfg.sample_every, TK_SAMPLE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congestion::AlgorithmKind;

    fn seg(data_seq: u64) -> Seg {
        Seg {
            data_seq,
            delivered: false,
            in_pipe: false,
            rexmits: 0,
            spurious_counted: false,
            last_tx: SimTime::ZERO,
        }
    }

    fn two_path_sender() -> MptcpSender {
        let mut s = MptcpSender::new(FlowConfig::new(0), AlgorithmKind::Lia.build(2));
        s.add_path(Route::direct(1));
        s.add_path(Route::direct(1));
        s
    }

    /// A flapping subflow (die → revive → die) must not enqueue a data
    /// sequence for reinjection a second time while the first reinjection is
    /// still held, undelivered, by another live subflow.
    #[test]
    fn mark_dead_skips_data_already_reinjected_elsewhere() {
        let mut s = two_path_sender();
        // Subflow 1 carries data 5 and 6, both undelivered.
        s.subflows[1].segs.insert(0, seg(5));
        s.subflows[1].segs.insert(1, seg(6));
        s.subflows[1].snd_nxt = 2;

        s.mark_dead(1);
        assert_eq!(s.reinject_queue, [5, 6], "first death strands both sequences");

        // The failover drain moved 5 and 6 onto live subflow 0 (still in
        // flight there), and subflow 1 then revived with its scoreboard
        // intact — the classic flap.
        s.reinject_queue.clear();
        s.subflows[0].segs.insert(0, seg(5));
        s.subflows[0].segs.insert(1, seg(6));
        s.subflows[0].snd_nxt = 2;
        s.revive(1);

        s.mark_dead(1);
        assert!(
            s.reinject_queue.is_empty(),
            "second death must not re-strand data held live elsewhere: {:?}",
            s.reinject_queue
        );
    }

    /// Data the live copy already delivered (or that only the dead subflow
    /// holds) still strands normally on a re-death.
    #[test]
    fn mark_dead_still_strands_unprotected_data() {
        let mut s = two_path_sender();
        s.subflows[1].segs.insert(0, seg(5));
        s.subflows[1].segs.insert(1, seg(6));
        s.subflows[1].snd_nxt = 2;
        // Subflow 0 holds a copy of 5, but it was already delivered — it no
        // longer protects 5 from re-stranding. Nothing covers 6.
        s.subflows[0].segs.insert(0, seg(5));
        s.subflows[0].snd_nxt = 1;
        s.subflows[0].segs.get_mut(0).unwrap().delivered = true;

        s.mark_dead(1);
        assert_eq!(s.reinject_queue, [5, 6]);
    }

    /// Sequences below the connection-level cumulative ACK never strand.
    #[test]
    fn mark_dead_ignores_already_acked_data() {
        let mut s = two_path_sender();
        s.subflows[1].segs.insert(0, seg(5));
        s.subflows[1].segs.insert(1, seg(6));
        s.subflows[1].snd_nxt = 2;
        s.data_acked = 6;

        s.mark_dead(1);
        assert_eq!(s.reinject_queue, [6], "only data at/above the data ACK strands");
    }
}
