//! Connection configuration.

use netsim::SimDuration;

/// Default wire size of a data segment (Ethernet MTU).
pub const DEFAULT_MSS_BYTES: u32 = 1_500;

/// Default wire size of a pure ACK.
pub const DEFAULT_ACK_BYTES: u32 = 40;

/// Receiver application read model: the app drains `pkts` packets from the
/// in-order receive buffer every `interval`. A slow reader fills the buffer
/// and shrinks the advertised window — down to zero, exercising the sender's
/// persist/window-probe machinery. `FlowConfig::app_read` defaults to `None`
/// (the app consumes instantly, the pre-existing behaviour).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppRead {
    /// Time between application reads.
    pub interval: SimDuration,
    /// Packets consumed per read.
    pub pkts: u64,
}

/// How new data is striped over subflows with window space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// Prefer the subflow with the smallest smoothed RTT (the MPTCP Linux
    /// kernel default).
    #[default]
    LowestSrtt,
    /// Rotate over subflows with space (the kernel's `roundrobin` module).
    RoundRobin,
}

/// Configuration of one (MP)TCP connection.
///
/// Build with [`FlowConfig::new`] and chain setters:
///
/// ```
/// use transport::FlowConfig;
/// use netsim::SimDuration;
///
/// let cfg = FlowConfig::new(1)
///     .transfer_bytes(16 * 1024 * 1024)
///     .min_rto(SimDuration::from_millis(50));
/// assert_eq!(cfg.total_pkts, Some(11185));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FlowConfig {
    /// Connection identifier carried in every segment.
    pub conn_id: u64,
    /// Data segment wire size in bytes.
    pub mss_bytes: u32,
    /// ACK wire size in bytes.
    pub ack_bytes: u32,
    /// Number of MSS-sized packets to transfer; `None` = long-lived flow.
    pub total_pkts: Option<u64>,
    /// Receive buffer (connection-level reordering window), in packets.
    /// The paper's ns-2 wireless scenario uses the 64 KB default ≈ 44 pkts.
    pub rcv_buf_pkts: u64,
    /// RTO floor (Linux default 200 ms; datacenter experiments lower it).
    pub min_rto: SimDuration,
    /// Initial congestion window in packets.
    pub initial_cwnd: f64,
    /// Telemetry sampling interval.
    pub sample_every: SimDuration,
    /// Packet scheduler for striping new data over subflows.
    pub scheduler: Scheduler,
    /// Opportunistic reinjection + penalization (the MPTCP kernel's
    /// countermeasures against head-of-line blocking by a slow subflow:
    /// re-send the blocking segment on a faster subflow and halve the
    /// blocker's window). Off by default; see `tests/reinjection.rs`.
    pub reinjection: bool,
    /// Receiver application read model; `None` = the application consumes
    /// delivered data instantly (never a receive-buffer limit beyond
    /// reassembly).
    pub app_read: Option<AppRead>,
    /// Declare a subflow *dead* after this many consecutive RTO backoffs
    /// without forward progress: its stranded data is reinjected onto live
    /// subflows, the scheduler skips it, and low-rate probes watch for
    /// revival (restored in slow start). `None` disables failover. The
    /// default, 6, needs roughly `63 × RTO` of total silence — only true
    /// path failures qualify.
    pub dead_after_backoffs: Option<u32>,
}

impl FlowConfig {
    /// A long-lived flow with Linux-like defaults.
    pub fn new(conn_id: u64) -> Self {
        FlowConfig {
            conn_id,
            mss_bytes: DEFAULT_MSS_BYTES,
            ack_bytes: DEFAULT_ACK_BYTES,
            total_pkts: None,
            rcv_buf_pkts: 256,
            min_rto: SimDuration::from_millis(200),
            initial_cwnd: congestion::INITIAL_CWND,
            sample_every: SimDuration::from_millis(10),
            scheduler: Scheduler::LowestSrtt,
            reinjection: false,
            app_read: None,
            dead_after_backoffs: Some(6),
        }
    }

    /// Sets a finite transfer size in bytes (rounded up to whole packets).
    pub fn transfer_bytes(mut self, bytes: u64) -> Self {
        let mss = u64::from(self.mss_bytes);
        self.total_pkts = Some(bytes.div_ceil(mss));
        self
    }

    /// Sets a finite transfer size in packets.
    pub fn transfer_pkts(mut self, pkts: u64) -> Self {
        self.total_pkts = Some(pkts);
        self
    }

    /// Sets the receive buffer in packets.
    pub fn rcv_buf_pkts(mut self, pkts: u64) -> Self {
        self.rcv_buf_pkts = pkts;
        self
    }

    /// Sets the receive buffer from a byte size (e.g. the 64 KB ns-2
    /// default).
    pub fn rcv_buf_bytes(mut self, bytes: u64) -> Self {
        self.rcv_buf_pkts = (bytes / u64::from(self.mss_bytes)).max(2);
        self
    }

    /// Sets the RTO floor.
    pub fn min_rto(mut self, rto: SimDuration) -> Self {
        self.min_rto = rto;
        self
    }

    /// Sets the telemetry sampling interval.
    pub fn sample_every(mut self, interval: SimDuration) -> Self {
        self.sample_every = interval;
        self
    }

    /// Sets the initial congestion window (packets).
    pub fn initial_cwnd(mut self, pkts: f64) -> Self {
        self.initial_cwnd = pkts;
        self
    }

    /// Sets the packet scheduler.
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables opportunistic reinjection + penalization.
    pub fn reinjection(mut self, on: bool) -> Self {
        self.reinjection = on;
        self
    }

    /// Models a rate-limited receiving application: drain `pkts` packets
    /// from the receive buffer every `interval`.
    pub fn app_read(mut self, interval: SimDuration, pkts: u64) -> Self {
        assert!(pkts > 0, "app read must consume at least one packet");
        assert!(!interval.is_zero(), "app read interval must be positive");
        self.app_read = Some(AppRead { interval, pkts });
        self
    }

    /// Sets the consecutive-RTO-backoff threshold for declaring a subflow
    /// dead (`None` disables dead-subflow failover).
    pub fn dead_after_backoffs(mut self, k: Option<u32>) -> Self {
        self.dead_after_backoffs = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_bytes_rounds_up() {
        let cfg = FlowConfig::new(0).transfer_bytes(1);
        assert_eq!(cfg.total_pkts, Some(1));
        let cfg = FlowConfig::new(0).transfer_bytes(3001);
        assert_eq!(cfg.total_pkts, Some(3));
    }

    #[test]
    fn rcv_buf_bytes_converts_to_packets() {
        let cfg = FlowConfig::new(0).rcv_buf_bytes(64 * 1024);
        assert_eq!(cfg.rcv_buf_pkts, 43);
    }

    #[test]
    fn defaults_are_long_lived() {
        let cfg = FlowConfig::new(3);
        assert_eq!(cfg.total_pkts, None);
        assert_eq!(cfg.conn_id, 3);
        assert_eq!(cfg.mss_bytes, DEFAULT_MSS_BYTES);
    }
}
