//! # transport — a packet-level TCP / Multipath TCP stack
//!
//! The protocol substrate for the MPTCP energy reproduction, built from
//! scratch over the [`netsim`] simulator (the paper used the MPTCP Linux
//! kernel v0.90; this crate reimplements the pieces of it the evaluation
//! exercises):
//!
//! * per-subflow TCP with slow start, congestion avoidance via a pluggable
//!   [`congestion::MultipathCongestionControl`], NewReno fast retransmit /
//!   fast recovery, and RFC 6298 RTO with exponential backoff
//!   ([`sender::MptcpSender`]);
//! * connection-level 64-bit data sequencing with a bounded reorder buffer
//!   and receive-window advertisement ([`receiver::MptcpReceiver`]);
//! * a lowest-SRTT packet scheduler (the kernel default);
//! * periodic per-subflow telemetry ([`sample::FlowSample`]) that the
//!   `energy-model` crate integrates into joules.
//!
//! Sequence numbers are in MSS-sized packets, as in `htsim`.
//!
//! # Examples
//!
//! Two hosts joined by one bidirectional path, transferring 1 MB under Reno:
//!
//! ```
//! use netsim::prelude::*;
//! use transport::{attach_flow, FlowConfig, PathSpec};
//! use congestion::AlgorithmKind;
//!
//! let mut sim = Simulator::new(1);
//! let fwd = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(10)));
//! let rev = sim.add_link(LinkConfig::new(10_000_000, SimDuration::from_millis(10)));
//! let flow = attach_flow(
//!     &mut sim,
//!     FlowConfig::new(0).transfer_bytes(1_000_000),
//!     AlgorithmKind::Reno.build(1),
//!     &[PathSpec::new(vec![fwd], vec![rev])],
//!     SimDuration::ZERO,
//! );
//! sim.run_until(SimTime::from_secs_f64(30.0));
//! assert!(flow.is_finished(&sim));
//! ```

pub mod config;
pub mod flow;
pub mod receiver;
pub mod rtt;
pub mod sample;
pub mod sender;

pub use config::{AppRead, FlowConfig, Scheduler, DEFAULT_ACK_BYTES, DEFAULT_MSS_BYTES};
pub use flow::{attach_flow, FlowHandle, PathSpec};
pub use receiver::MptcpReceiver;
pub use rtt::RttEstimator;
pub use sample::{FlowSample, PathHandoff, SubflowSample};
pub use sender::MptcpSender;
