//! Connection wiring: attach a sender/receiver pair to a simulator.

use crate::config::FlowConfig;
use crate::receiver::MptcpReceiver;
use crate::sample::FlowSample;
use crate::sender::{MptcpSender, TK_START};
use congestion::MultipathCongestionControl;
use netsim::{AgentId, LinkId, Route, SimDuration, SimTime, Simulator};

/// One bidirectional path for a connection: the forward (data) link sequence
/// and the reverse (ACK) link sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSpec {
    /// Links from sender to receiver, in order.
    pub fwd: Vec<LinkId>,
    /// Links from receiver back to sender, in order.
    pub rev: Vec<LinkId>,
}

impl PathSpec {
    /// Creates a path from forward and reverse link sequences.
    pub fn new(fwd: Vec<LinkId>, rev: Vec<LinkId>) -> Self {
        PathSpec { fwd, rev }
    }
}

/// Handle to an attached connection: the sender/receiver agent ids plus
/// convenience accessors that read their state back out of the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowHandle {
    /// Agent id of the sender endpoint.
    pub sender: AgentId,
    /// Agent id of the receiver endpoint.
    pub receiver: AgentId,
    /// The connection id from the [`FlowConfig`].
    pub conn_id: u64,
}

impl FlowHandle {
    /// The sender endpoint.
    pub fn sender_ref<'a>(&self, sim: &'a Simulator) -> &'a MptcpSender {
        sim.agent::<MptcpSender>(self.sender)
    }

    /// The receiver endpoint.
    pub fn receiver_ref<'a>(&self, sim: &'a Simulator) -> &'a MptcpReceiver {
        sim.agent::<MptcpReceiver>(self.receiver)
    }

    /// Whether a finite transfer has been fully acknowledged.
    pub fn is_finished(&self, sim: &Simulator) -> bool {
        self.sender_ref(sim).is_finished()
    }

    /// Transfer completion time, if finished.
    pub fn finish_time(&self, sim: &Simulator) -> Option<SimTime> {
        self.sender_ref(sim).finished_at()
    }

    /// Mean goodput in bits/second (up to `sim.now()` for long-lived flows).
    pub fn goodput_bps(&self, sim: &Simulator) -> f64 {
        self.sender_ref(sim).goodput_bps(sim.now())
    }

    /// The recorded telemetry series.
    pub fn samples<'a>(&self, sim: &'a Simulator) -> &'a [FlowSample] {
        self.sender_ref(sim).samples()
    }

    /// Freezes the connection for handoff to the fluid regime; see
    /// [`MptcpSender::halt`].
    pub fn halt(&self, sim: &mut Simulator) {
        let now = sim.now();
        sim.agent_mut::<MptcpSender>(self.sender).halt(now);
    }

    /// Per-path measured state for the fluid handoff; see
    /// [`MptcpSender::handoff_state`].
    pub fn handoff_state(&self, sim: &Simulator) -> Vec<crate::sample::PathHandoff> {
        self.sender_ref(sim).handoff_state(sim.now())
    }

    /// Connection-level robustness counters (zero-window stalls, persist
    /// probes, corrupt/window/reassembly discards) assembled from both
    /// endpoints, for the observability registry.
    pub fn conn_counters(&self, sim: &Simulator) -> obs::ConnCounters {
        let s = self.sender_ref(sim);
        let r = self.receiver_ref(sim);
        obs::ConnCounters {
            conn: self.conn_id,
            zero_window_stalls: s.zero_window_stalls,
            persist_probes: s.persist_probes,
            corrupt_acks: s.corrupt_acks,
            corrupt_discards: r.corrupt_discards,
            rwnd_dropped: r.rwnd_dropped,
            ooo_dropped: r.ooo_dropped,
            duplicates: r.duplicates,
        }
    }
}

/// Attaches a connection to `sim`: registers the two endpoint agents, wires
/// one subflow per [`PathSpec`], and schedules the sender to start after
/// `start_at`.
///
/// # Panics
///
/// Panics if `paths` is empty.
pub fn attach_flow(
    sim: &mut Simulator,
    cfg: FlowConfig,
    cc: Box<dyn MultipathCongestionControl>,
    paths: &[PathSpec],
    start_at: SimDuration,
) -> FlowHandle {
    assert!(!paths.is_empty(), "a connection needs at least one path");
    let conn_id = cfg.conn_id;
    let ack_bytes = cfg.ack_bytes;
    let rcv_buf = cfg.rcv_buf_pkts;
    let app_read = cfg.app_read;
    let sender = sim.add_agent(Box::new(MptcpSender::new(cfg, cc)));
    let receiver = sim.add_agent(Box::new(MptcpReceiver::new(conn_id, ack_bytes, rcv_buf)));
    sim.agent_mut::<MptcpReceiver>(receiver).set_app_read(app_read);
    for p in paths {
        sim.agent_mut::<MptcpSender>(sender).add_path(Route::new(p.fwd.clone(), receiver));
        sim.agent_mut::<MptcpReceiver>(receiver).add_path(Route::new(p.rev.clone(), sender));
    }
    #[cfg(feature = "check-invariants")]
    register_flow_invariants(sim, sender, receiver);
    sim.kick(sender, start_at, TK_START);
    FlowHandle { sender, receiver, conn_id }
}

/// Registers this connection's endpoint invariants with the simulator's
/// online checker (`check-invariants` feature): exactly-once in-order
/// delivery accounting, scoreboard/pipe consistency, window bounds, and the
/// cross-endpoint ACK bound. Cheap O(subflows) checks run every step; the
/// O(scoreboard) deep audit runs every 256th.
#[cfg(feature = "check-invariants")]
fn register_flow_invariants(sim: &mut Simulator, sender: AgentId, receiver: AgentId) {
    let mut tick: u32 = 0;
    sim.add_invariant_check(Box::new(move |s: &Simulator| {
        tick = tick.wrapping_add(1);
        let snd = s.agent::<MptcpSender>(sender);
        let rcv = s.agent::<MptcpReceiver>(receiver);
        snd.check_invariants(tick.is_multiple_of(256))?;
        rcv.check_invariants()?;
        // The sender can never believe more data was acknowledged than the
        // receiver has actually delivered in order.
        if snd.data_acked() > rcv.data_delivered() {
            return Err(format!(
                "conn {}: sender data_acked {} exceeds receiver in-order delivery {}",
                snd.config().conn_id,
                snd.data_acked(),
                rcv.data_delivered()
            ));
        }
        Ok(())
    }));
}
