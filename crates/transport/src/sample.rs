//! Periodic per-flow telemetry used for energy accounting and traces.

use netsim::SimTime;

/// One subflow's load during a sampling interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubflowSample {
    /// Goodput over the interval, in bits/second (acked packets × MSS).
    pub throughput_bps: f64,
    /// Smoothed RTT at the sample instant, in seconds (0 before any sample).
    pub srtt_s: f64,
    /// Minimum RTT observed so far, in seconds (0 before any sample).
    pub base_rtt_s: f64,
    /// Congestion window at the sample instant, in packets.
    pub cwnd_pkts: f64,
    /// Whether the subflow was actively sending during the interval.
    pub active: bool,
}

/// One path's measured state at the moment a packet-level connection is
/// frozen by [`crate::MptcpSender::halt`], used by the hybrid engine to seed
/// the fluid regime's initial conditions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathHandoff {
    /// Lifetime-average delivery rate on this path, packets/second.
    pub rate_pps: f64,
    /// Smoothed RTT at handoff, seconds (0 before any RTT sample).
    pub srtt_s: f64,
    /// Minimum RTT observed, seconds (0 before any RTT sample).
    pub base_rtt_s: f64,
}

/// A snapshot of a connection's per-subflow load at an instant.
///
/// The sender records one of these every [`crate::FlowConfig::sample_every`];
/// the energy crate integrates a power model over the resulting series.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSample {
    /// Sample timestamp.
    pub at: SimTime,
    /// Interval covered by the sample, in seconds.
    pub interval_s: f64,
    /// Per-subflow loads, indexed by subflow.
    pub subflows: Vec<SubflowSample>,
}

impl FlowSample {
    /// Aggregate throughput across subflows, bits/second.
    pub fn total_throughput_bps(&self) -> f64 {
        self.subflows.iter().map(|s| s.throughput_bps).sum()
    }

    /// Number of subflows actively sending.
    pub fn active_subflows(&self) -> usize {
        self.subflows.iter().filter(|s| s.active).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = FlowSample {
            at: SimTime::ZERO,
            interval_s: 0.01,
            subflows: vec![
                SubflowSample {
                    throughput_bps: 1e6,
                    srtt_s: 0.01,
                    base_rtt_s: 0.01,
                    cwnd_pkts: 10.0,
                    active: true,
                },
                SubflowSample {
                    throughput_bps: 2e6,
                    srtt_s: 0.02,
                    base_rtt_s: 0.01,
                    cwnd_pkts: 5.0,
                    active: false,
                },
            ],
        };
        // 1e6 + 2e6 is exact in f64, so the sum must equal 3e6 bit-for-bit.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(s.total_throughput_bps(), 3e6);
        }
        assert_eq!(s.active_subflows(), 1);
    }
}
