//! The MPTCP receiver endpoint.
//!
//! Acknowledges every data segment with a per-subflow cumulative ACK plus a
//! connection-level data ACK, echoes the segment timestamp (for Karn-safe RTT
//! sampling at the sender) and the ECN CE mark (DCTCP-style per-packet echo),
//! and advertises the remaining connection-level buffer space as the receive
//! window.
//!
//! The receive buffer is genuinely finite: in-order data not yet consumed by
//! the application ([`crate::config::AppRead`]) and out-of-order data held
//! for reassembly share `rcv_buf_pkts`. When it fills, the advertised window
//! drops to **zero** (no floor) and segments that would overflow are
//! discarded — acknowledged only with a pure window report (`for_seq: None`)
//! so the sender learns the window without mistaking the drop for delivery.
//! Corrupted segments are discarded without any ACK (checksum-failure
//! semantics). The receiver never sends gratuitous window updates when space
//! reopens; recovering from a zero window is the sender's persist machinery's
//! job, which models the lost-window-update worst case.

use crate::config::AppRead;
use netsim::{Agent, Ctx, Packet, Payload, Route, SimTime};
use obs::{DiscardCause, TraceEvent};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Timer token: application read tick.
const TK_APP_READ: u64 = 1;

/// Per-subflow receive state.
#[derive(Debug, Default)]
struct SubflowRecv {
    /// Next expected subflow sequence.
    rcv_nxt: u64,
    /// Out-of-order subflow sequences held for reassembly.
    ooo: BTreeSet<u64>,
    /// One past the highest sequence ever received (the SACK hint).
    sack_high: u64,
}

/// What [`MptcpReceiver::accept_data`] did with a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Accept {
    /// New data accepted (in order or buffered for reassembly).
    Ok,
    /// Already-seen data; discarded but acknowledged (dup-ACK discipline).
    Duplicate,
    /// New data rejected: the connection-level receive buffer is full.
    DroppedWindow,
    /// New data rejected: the subflow reassembly buffer is full.
    DroppedOoo,
}

/// The receiving endpoint of an (MP)TCP connection.
#[derive(Debug)]
pub struct MptcpReceiver {
    conn_id: u64,
    ack_bytes: u32,
    rcv_buf_pkts: u64,
    app_read: Option<AppRead>,
    /// Reverse (ACK) route per subflow.
    reverse: Vec<Arc<Route>>,
    subflows: Vec<SubflowRecv>,
    /// Next expected connection-level data sequence.
    data_rcv_nxt: u64,
    /// Out-of-order data sequences buffered at the connection level.
    data_ooo: BTreeSet<u64>,
    /// In-order packets delivered but not yet consumed by the application.
    app_buffered: u64,
    /// Packets the application has consumed (the exactly-once watermark).
    app_delivered: u64,
    app_timer_armed: bool,
    /// Total data segments that arrived (including duplicates).
    pub segments_received: u64,
    /// Duplicate segments discarded.
    pub duplicates: u64,
    /// Segments dropped because the connection-level buffer was full.
    pub rwnd_dropped: u64,
    /// Segments dropped because a subflow's reassembly buffer was full.
    pub ooo_dropped: u64,
    /// Corrupted segments discarded without acknowledgement.
    pub corrupt_discards: u64,
    /// Time of the most recent in-order delivery advance.
    pub last_delivery: Option<SimTime>,
}

impl MptcpReceiver {
    /// Creates a receiver; wire subflow ACK routes with
    /// [`MptcpReceiver::add_path`].
    pub fn new(conn_id: u64, ack_bytes: u32, rcv_buf_pkts: u64) -> Self {
        MptcpReceiver {
            conn_id,
            ack_bytes,
            rcv_buf_pkts: rcv_buf_pkts.max(2),
            app_read: None,
            reverse: Vec::new(),
            subflows: Vec::new(),
            data_rcv_nxt: 0,
            data_ooo: BTreeSet::new(),
            app_buffered: 0,
            app_delivered: 0,
            app_timer_armed: false,
            segments_received: 0,
            duplicates: 0,
            rwnd_dropped: 0,
            ooo_dropped: 0,
            corrupt_discards: 0,
            last_delivery: None,
        }
    }

    /// Installs an application read model (default: instant consumption).
    pub fn set_app_read(&mut self, app_read: Option<AppRead>) {
        self.app_read = app_read;
    }

    /// Adds the ACK route for the next subflow (must terminate at the paired
    /// sender).
    pub fn add_path(&mut self, reverse: Arc<Route>) {
        self.reverse.push(reverse);
        self.subflows.push(SubflowRecv::default());
    }

    /// Packets delivered in order at the connection level.
    pub fn data_delivered(&self) -> u64 {
        self.data_rcv_nxt
    }

    /// Packets the application has consumed. Equals
    /// [`MptcpReceiver::data_delivered`] unless an [`AppRead`] model lags
    /// behind; `app_delivered + app_buffered == data_rcv_nxt` always.
    pub fn app_delivered(&self) -> u64 {
        self.app_delivered
    }

    /// In-order packets awaiting application consumption.
    pub fn app_buffered(&self) -> u64 {
        self.app_buffered
    }

    /// Buffer occupancy: unconsumed in-order data plus reassembly holds.
    fn buffered_pkts(&self) -> u64 {
        self.app_buffered + self.data_ooo.len() as u64
    }

    /// Current advertised window in packets. Genuinely reaches zero when the
    /// buffer is full — the sender must handle it (persist probes), not rely
    /// on a floor.
    pub fn rwnd_pkts(&self) -> u64 {
        self.rcv_buf_pkts.saturating_sub(self.buffered_pkts())
    }

    fn accept_data(&mut self, r: usize, seq: u64, data_seq: u64, now: SimTime) -> Accept {
        self.segments_received += 1;
        // Admission control *before* any state change: a segment that would
        // overflow the connection buffer or the subflow reassembly buffer is
        // rejected as if it never arrived (no SACK hint, no reassembly).
        let new_conn_data = data_seq >= self.data_rcv_nxt && !self.data_ooo.contains(&data_seq);
        if new_conn_data && self.buffered_pkts() >= self.rcv_buf_pkts {
            self.rwnd_dropped += 1;
            return Accept::DroppedWindow;
        }
        {
            let sf = &self.subflows[r];
            if seq > sf.rcv_nxt
                && !sf.ooo.contains(&seq)
                && sf.ooo.len() as u64 >= self.rcv_buf_pkts
            {
                self.ooo_dropped += 1;
                return Accept::DroppedOoo;
            }
        }
        // Subflow-level reassembly (drives cumulative ACK / dupACK signal).
        let mut duplicate = false;
        let sf = &mut self.subflows[r];
        sf.sack_high = sf.sack_high.max(seq + 1);
        if seq == sf.rcv_nxt {
            sf.rcv_nxt += 1;
            while sf.ooo.remove(&sf.rcv_nxt) {
                sf.rcv_nxt += 1;
            }
        } else if seq > sf.rcv_nxt {
            if !sf.ooo.insert(seq) {
                duplicate = true;
                self.duplicates += 1;
            }
        } else {
            duplicate = true;
            self.duplicates += 1;
        }
        // Connection-level reordering (drives the data ACK and rwnd).
        if data_seq == self.data_rcv_nxt {
            self.data_rcv_nxt += 1;
            self.app_buffered += 1;
            while self.data_ooo.remove(&self.data_rcv_nxt) {
                self.data_rcv_nxt += 1;
                self.app_buffered += 1;
            }
            self.last_delivery = Some(now);
        } else if data_seq > self.data_rcv_nxt {
            self.data_ooo.insert(data_seq);
        }
        if duplicate {
            Accept::Duplicate
        } else {
            Accept::Ok
        }
    }

    /// Online self-check for the invariant checker: exactly-once
    /// accounting, reassembly-buffer ordering, and buffer bounds.
    #[cfg(feature = "check-invariants")]
    pub fn check_invariants(&self) -> Result<(), String> {
        let conn = self.conn_id;
        if self.app_delivered + self.app_buffered != self.data_rcv_nxt {
            return Err(format!(
                "conn {conn}: exactly-once broken: app_delivered {} + app_buffered {} != \
                 data_rcv_nxt {}",
                self.app_delivered, self.app_buffered, self.data_rcv_nxt
            ));
        }
        if let Some(&min) = self.data_ooo.first() {
            if min <= self.data_rcv_nxt {
                return Err(format!(
                    "conn {conn}: reassembly buffer holds already-delivered data {min} \
                     (data_rcv_nxt {})",
                    self.data_rcv_nxt
                ));
            }
        }
        if self.buffered_pkts() > self.rcv_buf_pkts {
            return Err(format!(
                "conn {conn}: receive buffer overfull: {} > {}",
                self.buffered_pkts(),
                self.rcv_buf_pkts
            ));
        }
        for (r, sf) in self.subflows.iter().enumerate() {
            if let Some(&min) = sf.ooo.first() {
                if min <= sf.rcv_nxt {
                    return Err(format!(
                        "conn {conn} sf{r}: subflow reassembly holds received seq {min} \
                         (rcv_nxt {})",
                        sf.rcv_nxt
                    ));
                }
            }
            if sf.ooo.len() as u64 > self.rcv_buf_pkts {
                return Err(format!(
                    "conn {conn} sf{r}: subflow reassembly overfull: {} > {}",
                    sf.ooo.len(),
                    self.rcv_buf_pkts
                ));
            }
            if sf.sack_high < sf.rcv_nxt {
                return Err(format!(
                    "conn {conn} sf{r}: sack_high {} below rcv_nxt {}",
                    sf.sack_high, sf.rcv_nxt
                ));
            }
        }
        Ok(())
    }

    /// Consumes buffered in-order data per the application model: instantly
    /// with no model, else by arming the read timer.
    fn drain_app(&mut self, ctx: &mut Ctx<'_>) {
        match self.app_read {
            None => {
                self.app_delivered += self.app_buffered;
                self.app_buffered = 0;
            }
            Some(ar) => {
                if self.app_buffered > 0 && !self.app_timer_armed {
                    self.app_timer_armed = true;
                    ctx.schedule_in(ar.interval, TK_APP_READ);
                }
            }
        }
    }
}

impl Agent for MptcpReceiver {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let Payload::Data { conn, subflow, seq, data_seq, .. } = pkt.payload else {
            return;
        };
        if conn != self.conn_id {
            return;
        }
        let r = subflow as usize;
        if r >= self.subflows.len() {
            return; // unknown subflow — wiring error upstream
        }
        if pkt.corrupted {
            // Checksum failure: drop silently, no ACK of any kind.
            self.corrupt_discards += 1;
            ctx.emit(TraceEvent::SegDiscard {
                t_ns: ctx.now().as_nanos(),
                conn: self.conn_id,
                pkt_id: pkt.id,
                cause: DiscardCause::Corrupt,
            });
            return;
        }
        let verdict = self.accept_data(r, seq, data_seq, ctx.now());
        self.drain_app(ctx);
        let for_seq = match verdict {
            Accept::Ok | Accept::Duplicate => Some(seq),
            Accept::DroppedWindow => {
                ctx.emit(TraceEvent::SegDiscard {
                    t_ns: ctx.now().as_nanos(),
                    conn: self.conn_id,
                    pkt_id: pkt.id,
                    cause: DiscardCause::WindowFull,
                });
                None
            }
            Accept::DroppedOoo => {
                ctx.emit(TraceEvent::SegDiscard {
                    t_ns: ctx.now().as_nanos(),
                    conn: self.conn_id,
                    pkt_id: pkt.id,
                    cause: DiscardCause::OooLimit,
                });
                None
            }
        };
        let ack = Payload::Ack {
            conn: self.conn_id,
            subflow,
            cum_ack: self.subflows[r].rcv_nxt,
            sack_high: self.subflows[r].sack_high,
            for_seq,
            data_ack: self.data_rcv_nxt,
            rwnd_pkts: self.rwnd_pkts(),
            ecn_echo: pkt.ecn_ce,
            ts_echo: pkt.sent_at,
        };
        let route = self.reverse[r].clone();
        ctx.send(route, self.ack_bytes, ack);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token != TK_APP_READ {
            return;
        }
        let Some(ar) = self.app_read else { return };
        let n = ar.pkts.min(self.app_buffered);
        self.app_buffered -= n;
        self.app_delivered += n;
        // Deliberately no window-update ACK here: space reopening is
        // discovered by the sender's persist probes.
        if self.app_buffered > 0 {
            ctx.schedule_in(ar.interval, TK_APP_READ);
        } else {
            self.app_timer_armed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv() -> MptcpReceiver {
        let mut r = MptcpReceiver::new(1, 40, 16);
        r.add_path(Route::direct(0));
        r
    }

    #[test]
    fn in_order_advances_both_levels() {
        let mut r = recv();
        assert_eq!(r.accept_data(0, 0, 0, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.accept_data(0, 1, 1, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.subflows[0].rcv_nxt, 2);
        assert_eq!(r.data_delivered(), 2);
        // Nothing consumed yet (drain_app not called): 2 packets buffered.
        assert_eq!(r.rwnd_pkts(), 14);
        r.app_delivered += r.app_buffered;
        r.app_buffered = 0;
        assert_eq!(r.rwnd_pkts(), 16);
    }

    #[test]
    fn gap_is_held_then_released() {
        let mut r = recv();
        r.accept_data(0, 0, 0, SimTime::ZERO);
        r.app_buffered = 0; // app consumed
        r.accept_data(0, 2, 2, SimTime::ZERO); // hole at 1
        assert_eq!(r.subflows[0].rcv_nxt, 1);
        assert_eq!(r.data_delivered(), 1);
        assert_eq!(r.rwnd_pkts(), 15);
        r.accept_data(0, 1, 1, SimTime::ZERO);
        r.app_buffered = 0;
        assert_eq!(r.subflows[0].rcv_nxt, 3);
        assert_eq!(r.data_delivered(), 3);
        assert_eq!(r.rwnd_pkts(), 16);
    }

    #[test]
    fn duplicates_are_counted() {
        let mut r = recv();
        assert_eq!(r.accept_data(0, 0, 0, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.accept_data(0, 0, 0, SimTime::ZERO), Accept::Duplicate);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.data_delivered(), 1);
    }

    #[test]
    fn out_of_order_duplicates_are_counted_once_held() {
        let mut r = recv();
        assert_eq!(r.accept_data(0, 3, 3, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.accept_data(0, 3, 3, SimTime::ZERO), Accept::Duplicate);
        assert_eq!(r.duplicates, 1);
    }

    #[test]
    fn connection_level_reorders_across_subflows() {
        let mut r = recv();
        r.add_path(Route::direct(0)); // second subflow
                                      // Data 0 on subflow 1, data 1 on subflow 0: both in subflow order.
        r.accept_data(1, 0, 1, SimTime::ZERO);
        assert_eq!(r.data_delivered(), 0); // waiting for data 0
        r.accept_data(0, 0, 0, SimTime::ZERO);
        assert_eq!(r.data_delivered(), 2);
    }

    #[test]
    fn full_buffer_advertises_a_zero_window_and_sheds_new_data() {
        let mut r = MptcpReceiver::new(1, 40, 2);
        r.add_path(Route::direct(0));
        // Two reassembly holds fill the 2-packet buffer.
        assert_eq!(r.accept_data(0, 1, 1, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.accept_data(0, 2, 2, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.rwnd_pkts(), 0, "no floor: a full buffer advertises zero");
        // A third new segment — even the in-order one — is shed.
        assert_eq!(r.accept_data(0, 0, 0, SimTime::ZERO), Accept::DroppedWindow);
        assert_eq!(r.rwnd_dropped, 1);
        assert_eq!(r.data_delivered(), 0, "the shed segment left no trace");
        // A duplicate of held data is still acknowledged, not shed.
        assert_eq!(r.accept_data(0, 1, 1, SimTime::ZERO), Accept::Duplicate);
    }

    #[test]
    fn unconsumed_app_data_closes_the_window() {
        let mut r = MptcpReceiver::new(1, 40, 2);
        r.add_path(Route::direct(0));
        assert_eq!(r.accept_data(0, 0, 0, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.accept_data(0, 1, 1, SimTime::ZERO), Accept::Ok);
        // In-order, but the app has not read: buffer full, window zero.
        assert_eq!(r.app_buffered(), 2);
        assert_eq!(r.rwnd_pkts(), 0);
        assert_eq!(r.accept_data(0, 2, 2, SimTime::ZERO), Accept::DroppedWindow);
        // The app reads one packet: one slot reopens.
        r.app_buffered -= 1;
        r.app_delivered += 1;
        assert_eq!(r.rwnd_pkts(), 1);
        assert_eq!(r.accept_data(0, 2, 2, SimTime::ZERO), Accept::Ok);
    }

    #[test]
    fn subflow_reassembly_buffer_is_bounded() {
        let mut r = MptcpReceiver::new(1, 40, 2);
        r.add_path(Route::direct(0));
        // Reinjection can resend one data sequence under many fresh subflow
        // sequences: the conn level sees a known hold (no window charge) but
        // the subflow reassembly set keeps growing — until its own cap.
        assert_eq!(r.accept_data(0, 5, 1, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.accept_data(0, 7, 1, SimTime::ZERO), Accept::Ok);
        assert_eq!(r.subflows[0].ooo.len(), 2);
        assert_eq!(r.accept_data(0, 9, 1, SimTime::ZERO), Accept::DroppedOoo);
        assert_eq!(r.ooo_dropped, 1);
        assert_eq!(r.subflows[0].ooo.len(), 2, "the shed segment was not held");
    }

    #[test]
    fn exactly_once_accounting_holds() {
        let mut r = recv();
        for (seq, data_seq) in [(0, 0), (2, 2), (1, 1), (2, 2)] {
            r.accept_data(0, seq, data_seq, SimTime::ZERO);
        }
        assert_eq!(r.app_delivered + r.app_buffered, r.data_rcv_nxt);
        assert_eq!(r.data_delivered(), 3);
        assert_eq!(r.duplicates, 1);
    }
}
