//! The MPTCP receiver endpoint.
//!
//! Acknowledges every data segment with a per-subflow cumulative ACK plus a
//! connection-level data ACK, echoes the segment timestamp (for Karn-safe RTT
//! sampling at the sender) and the ECN CE mark (DCTCP-style per-packet echo),
//! and advertises the remaining connection-level reorder-buffer space as the
//! receive window.

use netsim::{Agent, Ctx, Packet, Payload, Route, SimTime};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Per-subflow receive state.
#[derive(Debug, Default)]
struct SubflowRecv {
    /// Next expected subflow sequence.
    rcv_nxt: u64,
    /// Out-of-order subflow sequences held for reassembly.
    ooo: BTreeSet<u64>,
    /// One past the highest sequence ever received (the SACK hint).
    sack_high: u64,
}

/// The receiving endpoint of an (MP)TCP connection.
#[derive(Debug)]
pub struct MptcpReceiver {
    conn_id: u64,
    ack_bytes: u32,
    rcv_buf_pkts: u64,
    /// Reverse (ACK) route per subflow.
    reverse: Vec<Arc<Route>>,
    subflows: Vec<SubflowRecv>,
    /// Next expected connection-level data sequence.
    data_rcv_nxt: u64,
    /// Out-of-order data sequences buffered at the connection level.
    data_ooo: BTreeSet<u64>,
    /// Total data segments that arrived (including duplicates).
    pub segments_received: u64,
    /// Duplicate segments discarded.
    pub duplicates: u64,
    /// Time of the most recent in-order delivery advance.
    pub last_delivery: Option<SimTime>,
}

impl MptcpReceiver {
    /// Creates a receiver; wire subflow ACK routes with
    /// [`MptcpReceiver::add_path`].
    pub fn new(conn_id: u64, ack_bytes: u32, rcv_buf_pkts: u64) -> Self {
        MptcpReceiver {
            conn_id,
            ack_bytes,
            rcv_buf_pkts: rcv_buf_pkts.max(2),
            reverse: Vec::new(),
            subflows: Vec::new(),
            data_rcv_nxt: 0,
            data_ooo: BTreeSet::new(),
            segments_received: 0,
            duplicates: 0,
            last_delivery: None,
        }
    }

    /// Adds the ACK route for the next subflow (must terminate at the paired
    /// sender).
    pub fn add_path(&mut self, reverse: Arc<Route>) {
        self.reverse.push(reverse);
        self.subflows.push(SubflowRecv::default());
    }

    /// Packets delivered in order at the connection level.
    pub fn data_delivered(&self) -> u64 {
        self.data_rcv_nxt
    }

    /// Current advertised window in packets.
    pub fn rwnd_pkts(&self) -> u64 {
        self.rcv_buf_pkts.saturating_sub(self.data_ooo.len() as u64).max(1)
    }

    fn accept_data(&mut self, r: usize, seq: u64, data_seq: u64, now: SimTime) {
        self.segments_received += 1;
        // Subflow-level reassembly (drives cumulative ACK / dupACK signal).
        let sf = &mut self.subflows[r];
        sf.sack_high = sf.sack_high.max(seq + 1);
        if seq == sf.rcv_nxt {
            sf.rcv_nxt += 1;
            while sf.ooo.remove(&sf.rcv_nxt) {
                sf.rcv_nxt += 1;
            }
        } else if seq > sf.rcv_nxt {
            sf.ooo.insert(seq);
        } else {
            self.duplicates += 1;
        }
        // Connection-level reordering (drives the data ACK and rwnd).
        if data_seq == self.data_rcv_nxt {
            self.data_rcv_nxt += 1;
            while self.data_ooo.remove(&self.data_rcv_nxt) {
                self.data_rcv_nxt += 1;
            }
            self.last_delivery = Some(now);
        } else if data_seq > self.data_rcv_nxt {
            self.data_ooo.insert(data_seq);
        }
    }
}

impl Agent for MptcpReceiver {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let Payload::Data { conn, subflow, seq, data_seq, .. } = pkt.payload else {
            return;
        };
        if conn != self.conn_id {
            return;
        }
        let r = subflow as usize;
        if r >= self.subflows.len() {
            return; // unknown subflow — wiring error upstream
        }
        self.accept_data(r, seq, data_seq, ctx.now());
        let ack = Payload::Ack {
            conn: self.conn_id,
            subflow,
            cum_ack: self.subflows[r].rcv_nxt,
            sack_high: self.subflows[r].sack_high,
            for_seq: seq,
            data_ack: self.data_rcv_nxt,
            rwnd_pkts: self.rwnd_pkts(),
            ecn_echo: pkt.ecn_ce,
            ts_echo: pkt.sent_at,
        };
        let route = self.reverse[r].clone();
        ctx.send(route, self.ack_bytes, ack);
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv() -> MptcpReceiver {
        let mut r = MptcpReceiver::new(1, 40, 16);
        r.add_path(Route::direct(0));
        r
    }

    #[test]
    fn in_order_advances_both_levels() {
        let mut r = recv();
        r.accept_data(0, 0, 0, SimTime::ZERO);
        r.accept_data(0, 1, 1, SimTime::ZERO);
        assert_eq!(r.subflows[0].rcv_nxt, 2);
        assert_eq!(r.data_delivered(), 2);
        assert_eq!(r.rwnd_pkts(), 16);
    }

    #[test]
    fn gap_is_held_then_released() {
        let mut r = recv();
        r.accept_data(0, 0, 0, SimTime::ZERO);
        r.accept_data(0, 2, 2, SimTime::ZERO); // hole at 1
        assert_eq!(r.subflows[0].rcv_nxt, 1);
        assert_eq!(r.data_delivered(), 1);
        assert_eq!(r.rwnd_pkts(), 15);
        r.accept_data(0, 1, 1, SimTime::ZERO);
        assert_eq!(r.subflows[0].rcv_nxt, 3);
        assert_eq!(r.data_delivered(), 3);
        assert_eq!(r.rwnd_pkts(), 16);
    }

    #[test]
    fn duplicates_are_counted() {
        let mut r = recv();
        r.accept_data(0, 0, 0, SimTime::ZERO);
        r.accept_data(0, 0, 0, SimTime::ZERO);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.data_delivered(), 1);
    }

    #[test]
    fn connection_level_reorders_across_subflows() {
        let mut r = recv();
        r.add_path(Route::direct(0)); // second subflow
                                      // Data 0 on subflow 1, data 1 on subflow 0: both in subflow order.
        r.accept_data(1, 0, 1, SimTime::ZERO);
        assert_eq!(r.data_delivered(), 0); // waiting for data 0
        r.accept_data(0, 0, 0, SimTime::ZERO);
        assert_eq!(r.data_delivered(), 2);
    }

    #[test]
    fn rwnd_floor_is_one() {
        let mut r = MptcpReceiver::new(1, 40, 2);
        r.add_path(Route::direct(0));
        r.accept_data(0, 1, 1, SimTime::ZERO);
        r.accept_data(0, 2, 2, SimTime::ZERO);
        r.accept_data(0, 3, 3, SimTime::ZERO);
        assert_eq!(r.rwnd_pkts(), 1);
    }
}
