//! RTT estimation and retransmission-timeout computation (RFC 6298).

use netsim::SimDuration;

/// Smoothed RTT / RTO estimator per RFC 6298.
///
/// `srtt ← 7/8·srtt + 1/8·sample`, `rttvar ← 3/4·rttvar + 1/4·|srtt−sample|`,
/// `rto = srtt + 4·rttvar`, clamped to `[min_rto, max_rto]`.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO floor. The ceiling is 60 s.
    pub fn new(min_rto: SimDuration) -> Self {
        RttEstimator { srtt: None, rttvar: 0.0, min_rto, max_rto: SimDuration::from_secs(60) }
    }

    /// Feeds an RTT sample (seconds).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `sample` is not positive.
    pub fn observe(&mut self, sample: f64) {
        debug_assert!(sample > 0.0, "RTT sample must be positive");
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
    }

    /// The smoothed RTT in seconds, if any sample has been taken.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// The current retransmission timeout (before exponential backoff).
    pub fn rto(&self) -> SimDuration {
        let raw = match self.srtt {
            None => SimDuration::from_secs(1), // RFC 6298 initial RTO
            Some(srtt) => SimDuration::from_secs_f64(srtt + 4.0 * self.rttvar),
        };
        raw.clamp(self.min_rto, self.max_rto)
    }

    /// The RTO after `backoff` doublings, capped at the ceiling.
    pub fn rto_backed_off(&self, backoff: u32) -> SimDuration {
        let base = self.rto();
        let factor = 1u64 << backoff.min(16);
        (base * factor).min(self.max_rto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.observe(0.1);
        assert_eq!(e.srtt(), Some(0.1));
        // rto = 0.1 + 4*0.05 = 0.3s
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn steady_samples_converge_to_min_variance() {
        let mut e = RttEstimator::new(SimDuration::from_millis(10));
        for _ in 0..200 {
            e.observe(0.05);
        }
        assert!((e.srtt().unwrap() - 0.05).abs() < 1e-9);
        // Variance decays toward zero; RTO approaches srtt but respects floor.
        assert!(e.rto() >= SimDuration::from_millis(10));
        assert!(e.rto() <= SimDuration::from_millis(60));
    }

    #[test]
    fn rto_floor_applies() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        for _ in 0..100 {
            e.observe(0.001);
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        e.observe(0.1);
        let base = e.rto();
        assert_eq!(e.rto_backed_off(1), base * 2);
        assert_eq!(e.rto_backed_off(2), base * 4);
        assert_eq!(e.rto_backed_off(30), SimDuration::from_secs(60));
    }
}
