//! RTT estimation and retransmission-timeout computation (RFC 6298).

use netsim::SimDuration;

/// Smoothed RTT / RTO estimator per RFC 6298.
///
/// `srtt ← 7/8·srtt + 1/8·sample`, `rttvar ← 3/4·rttvar + 1/4·|srtt−sample|`,
/// `rto = srtt + max(G, 4·rttvar)`, clamped to `[min_rto, max_rto]`, where
/// `G` is the clock granularity ([`RttEstimator::GRANULARITY`], one
/// simulator tick).
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RttEstimator {
    /// RFC 6298's clock granularity `G`: one simulator tick (1 ns). After a
    /// run of identical samples `rttvar` decays toward zero, and without
    /// this floor the computed RTO collapses onto `srtt` exactly — any
    /// timer-vs-ACK tie then depends on event-queue ordering instead of the
    /// estimator.
    pub const GRANULARITY: SimDuration = SimDuration::from_nanos(1);

    /// Creates an estimator with the given RTO floor. The ceiling is 60 s,
    /// raised to `min_rto` if the floor is larger (so the clamp is always
    /// well-formed).
    pub fn new(min_rto: SimDuration) -> Self {
        let max_rto = SimDuration::from_secs(60).max(min_rto);
        RttEstimator { srtt: None, rttvar: 0.0, min_rto, max_rto }
    }

    /// Feeds an RTT sample (seconds).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `sample` is not positive.
    pub fn observe(&mut self, sample: f64) {
        debug_assert!(sample > 0.0, "RTT sample must be positive");
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
    }

    /// The smoothed RTT in seconds, if any sample has been taken.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// The current retransmission timeout (before exponential backoff):
    /// `srtt + max(G, 4·rttvar)` per RFC 6298 §2.3, clamped to
    /// `[min_rto, max_rto]`.
    pub fn rto(&self) -> SimDuration {
        let raw = match self.srtt {
            None => SimDuration::from_secs(1), // RFC 6298 initial RTO
            Some(srtt) => {
                let var = (4.0 * self.rttvar).max(Self::GRANULARITY.as_secs_f64());
                SimDuration::from_secs_f64(srtt + var)
            }
        };
        raw.clamp(self.min_rto, self.max_rto)
    }

    /// The RTO after `backoff` doublings, capped at the ceiling. The
    /// multiply saturates (`SimDuration`'s `Mul` clamps at the nanosecond
    /// ceiling), so a base near `max_rto` doubled `2¹⁶` times caps cleanly
    /// instead of wrapping before the `min`.
    pub fn rto_backed_off(&self, backoff: u32) -> SimDuration {
        let base = self.rto();
        let factor = 1u64 << backoff.min(16);
        (base * factor).min(self.max_rto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.observe(0.1);
        assert_eq!(e.srtt(), Some(0.1));
        // rto = 0.1 + 4*0.05 = 0.3s
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn steady_samples_converge_to_min_variance() {
        let mut e = RttEstimator::new(SimDuration::from_millis(10));
        for _ in 0..200 {
            e.observe(0.05);
        }
        assert!((e.srtt().unwrap() - 0.05).abs() < 1e-9);
        // Variance decays toward zero; RTO approaches srtt but respects floor.
        assert!(e.rto() >= SimDuration::from_millis(10));
        assert!(e.rto() <= SimDuration::from_millis(60));
    }

    #[test]
    fn rto_floor_applies() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        for _ in 0..100 {
            e.observe(0.001);
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        e.observe(0.1);
        let base = e.rto();
        assert_eq!(e.rto_backed_off(1), base * 2);
        assert_eq!(e.rto_backed_off(2), base * 4);
        assert_eq!(e.rto_backed_off(30), SimDuration::from_secs(60));
    }

    #[test]
    fn constant_samples_keep_rto_strictly_above_srtt() {
        // RFC 6298 regression: with the floor set far below srtt, a long run
        // of identical samples decays rttvar to zero; the granularity term
        // must keep RTO > srtt rather than letting the clamp do the work.
        let mut e = RttEstimator::new(SimDuration::from_nanos(1));
        for _ in 0..1000 {
            e.observe(0.05);
        }
        let srtt = SimDuration::from_secs_f64(e.srtt().unwrap());
        assert!(e.rto() > srtt, "rto {:?} collapsed onto srtt {:?}", e.rto(), srtt);
        assert_eq!(e.rto(), srtt + RttEstimator::GRANULARITY);
    }

    #[test]
    fn large_min_rto_does_not_overflow_backoff() {
        // A floor above the 60 s default ceiling raises the ceiling with it;
        // 2^16 doublings of a base near the u64 nanosecond limit must
        // saturate and cap instead of wrapping.
        let huge = SimDuration::from_nanos(u64::MAX / 2);
        let e = RttEstimator::new(huge);
        assert_eq!(e.rto(), huge, "clamp must stay well-formed for min_rto > 60s");
        for backoff in [16, 20, u32::MAX] {
            assert_eq!(e.rto_backed_off(backoff), huge);
        }
        // A merely-large floor (not overflow-prone) still caps at itself.
        let e = RttEstimator::new(SimDuration::from_secs(120));
        assert_eq!(e.rto_backed_off(16), SimDuration::from_secs(120));
    }
}
