//! Session-level energy accounting tests: the LTE tail's contribution to a
//! bursty session, host-level aggregation across flows, and uplink/downlink
//! model asymmetries.

use energy_model::{
    energy_of_flow, HostLoadSeries, LteModel, PathLoad, PhoneModel, PowerModel, WifiModel,
    WiredCpuModel,
};
use netsim::SimTime;
use transport::{FlowSample, SubflowSample};

fn sample(at_s: f64, interval_s: f64, per_path_mbps: &[f64]) -> FlowSample {
    FlowSample {
        at: SimTime::from_secs_f64(at_s),
        interval_s,
        subflows: per_path_mbps
            .iter()
            .map(|&m| SubflowSample {
                throughput_bps: m * 1e6,
                srtt_s: 0.05,
                base_rtt_s: 0.05,
                cwnd_pkts: 10.0,
                active: m > 0.0,
            })
            .collect(),
    }
}

#[test]
fn lte_tail_energy_dominates_a_short_burst_session() {
    // 1 s of transfer followed by 14 s of idle: the 11.576 s tail at 1.06 W
    // costs far more than the transfer itself — the phenomenon that makes
    // bursty traffic expensive on LTE (and motivates radio-aware transport).
    let mut model = LteModel::mobisys2012();
    let mut samples = Vec::new();
    for i in 0..10 {
        samples.push(sample(i as f64 * 0.1, 0.1, &[5.0]));
    }
    for i in 0..140 {
        samples.push(sample(1.0 + i as f64 * 0.1, 0.1, &[0.0]));
    }
    let report = energy_of_flow(&mut model, &samples);
    let transfer_j: f64 = report.trace.iter().take(10).map(|(_, p)| p * 0.1).sum();
    let tail_j = report.joules - transfer_j;
    assert!(tail_j > 2.0 * transfer_j, "tail {tail_j} J should dominate transfer {transfer_j} J");
}

#[test]
fn back_to_back_bursts_reuse_the_tail() {
    // Two bursts 3 s apart: the radio never leaves CONNECTED/TAIL, so the
    // second burst pays no promotion.
    let mut model = LteModel::mobisys2012();
    let mut samples = Vec::new();
    for i in 0..10 {
        samples.push(sample(i as f64 * 0.1, 0.1, &[5.0]));
    }
    for i in 0..30 {
        samples.push(sample(1.0 + i as f64 * 0.1, 0.1, &[0.0]));
    }
    for i in 0..10 {
        samples.push(sample(4.0 + i as f64 * 0.1, 0.1, &[5.0]));
    }
    let report = energy_of_flow(&mut model, &samples);
    // No sample in the second burst may sit at promotion power.
    let second_burst = &report.trace[40..50];
    assert!(
        second_burst.iter().all(|(_, p)| (*p - model.promo_w).abs() > 1e-9),
        "second burst must not re-promote"
    );
}

#[test]
fn uplink_models_charge_more_per_bit() {
    let down = WifiModel::mobisys2012();
    let up = WifiModel::mobisys2012_uplink();
    assert!(up.per_mbps_w > down.per_mbps_w);
    let lte_down = LteModel::mobisys2012();
    let lte_up = LteModel::mobisys2012_uplink();
    assert!(lte_up.per_mbps_w > lte_down.per_mbps_w);
    // Uplink: LTE per-bit beats WiFi per-bit (the DTS asymmetry).
    assert!(lte_up.per_mbps_w > up.per_mbps_w);
}

#[test]
fn host_series_with_interface_mapping() {
    // Two flows on one host: flow A uses iface 0, flow B uses iface 1.
    let mut series = HostLoadSeries::new(2, 0.1, 1.0);
    let a: Vec<FlowSample> = (0..10).map(|i| sample(i as f64 * 0.1, 0.1, &[10.0])).collect();
    let b: Vec<FlowSample> = (0..10).map(|i| sample(i as f64 * 0.1, 0.1, &[20.0])).collect();
    series.add_flow(&a, &[0]);
    series.add_flow(&b, &[1]);
    assert!((series.bins[0][0].throughput_bps - 10e6).abs() < 1.0);
    assert!((series.bins[0][1].throughput_bps - 20e6).abs() < 1.0);
    // Host energy counts the per-subflow overhead of both active interfaces.
    let mut cpu = WiredCpuModel::i7_3770();
    let joined = series.energy(&mut cpu, None);
    let mut cpu_single = WiredCpuModel::i7_3770();
    let mut merged = HostLoadSeries::new(1, 0.1, 1.0);
    merged.add_flow(&a, &[0]);
    merged.add_flow(&b, &[0]);
    let pooled = merged.energy(&mut cpu_single, None);
    assert!(
        joined.joules > pooled.joules,
        "split across 2 ifaces {} must cost more than pooled {} (Fig. 1 concavity)",
        joined.joules,
        pooled.joules
    );
}

#[test]
// Bit-reproducibility check: reset() must restore the exact same power
// computation, so the strict comparison is intended.
#[allow(clippy::float_cmp)]
fn phone_reset_between_runs_restores_idle_state() {
    let mut phone = PhoneModel::nexus5();
    let active = [PathLoad::new(5e6, 0.05), PathLoad::new(5e6, 0.1)];
    let p_first = phone.power_w(0.0, &active);
    phone.power_w(1.0, &active);
    phone.reset();
    let p_again = phone.power_w(0.0, &active);
    assert_eq!(p_first, p_again, "reset must make runs reproducible");
}
