//! # energy-model — power and energy accounting for multipath transport
//!
//! The measurement substrate of the reproduction. The paper reads Intel RAPL
//! counters and phone batteries; this crate provides parametric power models
//! whose *shapes* are calibrated to the paper's §III findings, plus the
//! integration machinery that turns transport telemetry into joules:
//!
//! * [`cpu::WiredCpuModel`] — concave CPU-power-vs-throughput with RTT and
//!   subflow-count sensitivity (Figs. 1, 3a, 4);
//! * [`radio::WifiModel`], [`radio::LteModel`], [`radio::PhoneModel`] —
//!   linear radio power with the LTE RRC promotion/tail machine
//!   (Figs. 2, 3b), after Huang et al. (MobiSys 2012);
//! * [`meter::energy_of_flow`] / [`meter::HostLoadSeries`] — integrate any
//!   [`PowerModel`] over per-flow or per-host load series, implementing the
//!   paper's Equation (2).
//!
//! # Examples
//!
//! ```
//! use energy_model::{PathLoad, PowerModel, WiredCpuModel};
//!
//! let mut cpu = WiredCpuModel::i7_3770();
//! let one_path = cpu.power_w(0.0, &[PathLoad::new(200e6, 0.02)]);
//! let idle = cpu.power_w(0.0, &[]);
//! assert!(one_path > idle);
//! ```

pub mod cpu;
pub mod load;
pub mod meter;
pub mod radio;

pub use cpu::WiredCpuModel;
pub use load::{PathLoad, PowerModel};
pub use meter::{energy_of_flow, loads_of, EnergyReport, HostLoadSeries};
pub use radio::{LteModel, PhoneModel, RrcState, WifiModel};
