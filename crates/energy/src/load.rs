//! Load descriptors consumed by power models.

/// The instantaneous load a power model sees for one path/interface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathLoad {
    /// Goodput on the path, bits/second.
    pub throughput_bps: f64,
    /// Smoothed RTT, seconds (0 if unknown).
    pub rtt_s: f64,
    /// Minimum RTT observed, seconds (0 if unknown).
    pub base_rtt_s: f64,
    /// Whether the path is actively carrying traffic.
    pub active: bool,
}

impl PathLoad {
    /// An idle path.
    pub const IDLE: PathLoad =
        PathLoad { throughput_bps: 0.0, rtt_s: 0.0, base_rtt_s: 0.0, active: false };

    /// Convenience constructor.
    pub fn new(throughput_bps: f64, rtt_s: f64) -> Self {
        PathLoad { throughput_bps, rtt_s, base_rtt_s: rtt_s, active: throughput_bps > 0.0 }
    }

    /// Throughput in Mb/s.
    pub fn mbps(&self) -> f64 {
        self.throughput_bps / 1e6
    }
}

/// A power model: maps per-path load to host power in watts.
///
/// Takes `&mut self` and the sample time so stateful models (the LTE RRC
/// tail-state machine) can be expressed with the same trait as pure
/// functions of load.
pub trait PowerModel {
    /// Power draw in watts at time `at_s` under the given per-path loads.
    fn power_w(&mut self, at_s: f64, paths: &[PathLoad]) -> f64;

    /// Resets any internal state (RRC machines) for a fresh run.
    fn reset(&mut self) {}
}

#[cfg(test)]
// Tests pin outputs that are copies of model constants (base/tail/idle
// watts, zero throughput) reached without arithmetic, so exact float
// comparison is the correct strictness.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_inactive() {
        const { assert!(!PathLoad::IDLE.active) };
        assert_eq!(PathLoad::IDLE.mbps(), 0.0);
    }

    #[test]
    fn new_infers_activity() {
        assert!(PathLoad::new(1e6, 0.01).active);
        assert!(!PathLoad::new(0.0, 0.01).active);
        assert_eq!(PathLoad::new(2e6, 0.01).mbps(), 2.0);
    }
}
