//! Host CPU power model (RAPL-style), calibrated to the paper's §III
//! measurements.
//!
//! The paper reads Intel RAPL counters on i7-3770 / Xeon E5 hosts and finds
//! (its Equation (1) and Figs. 1, 3a, 4):
//!
//! * CPU power is a **concave, non-linear** increasing function of throughput
//!   on wired Ethernet — only ≈ 15 % total growth from 200 → 1000 Mb/s
//!   (Fig. 3a);
//! * power grows with **path RTT** at constant throughput (Fig. 4);
//! * power grows with the **number of subflows** (Fig. 1).
//!
//! We encode those shapes as
//!
//! ```text
//! P = P_idle + Σ_r a·(τ_r in Mb/s)^e · F_rtt(r) + c_sf·max(0, n_active − 1)
//! F_rtt(r) = 1 + γ_p·RTT_r/RTT_ref + γ_q·min(cap, (RTT_r/baseRTT_r − 1)⁺)
//! ```
//!
//! with defaults fitted to the 15 %-over-200→1000 Mb/s anchor:
//! `e = 0.231`, `a` such that 200 Mb/s contributes 10 W over a 20 W idle.
//!
//! The RTT factor has two parts. `γ_p` charges absolute path delay (longer
//! paths keep more in-flight protocol state). `γ_q` charges *queueing
//! inflation* — RTT above the path's own base RTT. The paper's Fig. 4
//! raises delay precisely by queueing (extra subflows sharing a NIC), so the
//! inflation term is the faithful encoding of that measurement, and it is
//! the channel through which delay-avoiding congestion control (DTS, DTS-Φ)
//! turns queue reduction into energy savings at unchanged throughput.

use crate::load::{PathLoad, PowerModel};

/// Concave wired-CPU power model.
#[derive(Clone, Debug, PartialEq)]
pub struct WiredCpuModel {
    /// Idle package power, watts.
    pub idle_w: f64,
    /// Throughput coefficient `a` (watts per Mb/s^e).
    pub coeff: f64,
    /// Concavity exponent `e` in (0, 1].
    pub exponent: f64,
    /// Absolute-RTT sensitivity `γ_p` (dimensionless).
    pub rtt_gamma: f64,
    /// RTT normalization, seconds.
    pub rtt_ref_s: f64,
    /// Queue-inflation sensitivity `γ_q` (dimensionless).
    pub queue_gamma: f64,
    /// Cap on the inflation ratio `(RTT/base − 1)` charged.
    pub queue_cap: f64,
    /// Marginal power per additional active subflow, watts.
    pub per_subflow_w: f64,
}

impl WiredCpuModel {
    /// The i7-3770 desktop calibration used for the testbed figures
    /// (Figs. 1, 3a, 4, 6): 20 W idle, +10 W at 200 Mb/s, ≈ 15 % total growth
    /// to 1000 Mb/s.
    pub fn i7_3770() -> Self {
        // a·200^e = 10 with e = 0.231  →  a = 10 / 200^0.231.
        let exponent = 0.231;
        let coeff = 10.0 / 200f64.powf(exponent);
        WiredCpuModel {
            idle_w: 20.0,
            coeff,
            exponent,
            rtt_gamma: 0.15,
            rtt_ref_s: 0.100,
            queue_gamma: 0.5,
            queue_cap: 4.0,
            per_subflow_w: 0.8,
        }
    }

    /// The Xeon E5 server calibration (EC2 `c4.xlarge`-like hosts, Fig. 10):
    /// higher idle floor, same shape.
    pub fn xeon_e5() -> Self {
        let mut m = WiredCpuModel::i7_3770();
        m.idle_w = 35.0;
        m.coeff *= 1.3;
        m.per_subflow_w = 1.0;
        m
    }

    /// Energy-proportional datacenter server (the §V-C model the paper
    /// builds on, after Abts et al. and Lin et al.): dynamic power *linear*
    /// in NIC throughput over an idle floor, so energy-per-bit tracks
    /// utilization — the accounting behind the paper's Figs. 12–15 "energy
    /// overhead". Queue-inflation is still charged (hierarchical congestion
    /// costs energy), which is what the compensative parameter φ recovers.
    pub fn energy_proportional_server() -> Self {
        WiredCpuModel {
            idle_w: 35.0,
            coeff: 0.06,
            exponent: 1.0,
            rtt_gamma: 0.05,
            rtt_ref_s: 0.100,
            queue_gamma: 0.5,
            queue_cap: 4.0,
            per_subflow_w: 0.5,
        }
    }

    /// Power contribution of one path, excluding idle and subflow overhead.
    pub fn path_power_w(&self, load: &PathLoad) -> f64 {
        if !load.active || load.throughput_bps <= 0.0 {
            return 0.0;
        }
        let base = self.coeff * load.mbps().powf(self.exponent);
        let inflation = if load.base_rtt_s > 0.0 {
            ((load.rtt_s / load.base_rtt_s) - 1.0).clamp(0.0, self.queue_cap)
        } else {
            0.0
        };
        let rtt_factor =
            1.0 + self.rtt_gamma * (load.rtt_s / self.rtt_ref_s) + self.queue_gamma * inflation;
        base * rtt_factor
    }
}

impl PowerModel for WiredCpuModel {
    fn power_w(&mut self, _at_s: f64, paths: &[PathLoad]) -> f64 {
        let active = paths.iter().filter(|p| p.active).count();
        let dynamic: f64 = paths.iter().map(|p| self.path_power_w(p)).sum();
        self.idle_w + dynamic + self.per_subflow_w * active.saturating_sub(1) as f64
    }
}

#[cfg(test)]
// Tests pin outputs that are copies of model constants (base/tail/idle
// watts, zero throughput) reached without arithmetic, so exact float
// comparison is the correct strictness.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn power(m: &mut WiredCpuModel, paths: &[PathLoad]) -> f64 {
        m.power_w(0.0, paths)
    }

    #[test]
    fn idle_host_draws_idle_power() {
        let mut m = WiredCpuModel::i7_3770();
        assert_eq!(power(&mut m, &[PathLoad::IDLE]), 20.0);
        assert_eq!(power(&mut m, &[]), 20.0);
    }

    #[test]
    fn fifteen_percent_growth_anchor_holds() {
        // Paper Fig. 3a: ≈15% total power growth from 200 to 1000 Mb/s.
        let mut m = WiredCpuModel::i7_3770();
        m.rtt_gamma = 0.0; // isolate the throughput term
        let p200 = power(&mut m, &[PathLoad::new(200e6, 0.0)]);
        let p1000 = power(&mut m, &[PathLoad::new(1000e6, 0.0)]);
        let growth = p1000 / p200;
        assert!((growth - 1.15).abs() < 0.01, "growth {growth}");
    }

    #[test]
    fn power_is_concave_in_throughput() {
        let m = WiredCpuModel::i7_3770();
        let p = |mbps: f64| {
            let mut mm = m.clone();
            mm.power_w(0.0, &[PathLoad::new(mbps * 1e6, 0.0)])
        };
        // Midpoint above chord: concave.
        assert!(p(600.0) > (p(200.0) + p(1000.0)) / 2.0);
    }

    #[test]
    fn higher_rtt_draws_more_power_at_same_throughput() {
        // Paper Fig. 4 — absolute-delay term.
        let mut m = WiredCpuModel::i7_3770();
        let low = power(&mut m, &[PathLoad::new(100e6, 0.020)]);
        let high = power(&mut m, &[PathLoad::new(100e6, 0.200)]);
        assert!(high > low * 1.05, "high {high} low {low}");
    }

    #[test]
    fn queue_inflation_draws_more_power_at_same_throughput() {
        // Paper Fig. 4 — the paper raises delay via queueing (extra subflows
        // on a NIC): RTT above base is charged by γ_q.
        let mut m = WiredCpuModel::i7_3770();
        let calm = PathLoad { throughput_bps: 100e6, rtt_s: 0.02, base_rtt_s: 0.02, active: true };
        let queued =
            PathLoad { throughput_bps: 100e6, rtt_s: 0.06, base_rtt_s: 0.02, active: true };
        let p_calm = power(&mut m, &[calm]);
        let p_queued = power(&mut m, &[queued]);
        assert!(p_queued > p_calm * 1.15, "queued {p_queued} calm {p_calm}");
    }

    #[test]
    fn inflation_charge_is_capped() {
        let mut m = WiredCpuModel::i7_3770();
        // Inflation far beyond the cap vs exactly at the cap: both
        // pay the same inflation surcharge; only the small absolute-RTT term
        // differs.
        let wild =
            PathLoad { throughput_bps: 100e6, rtt_s: 0.020, base_rtt_s: 0.001, active: true };
        let capped =
            PathLoad { throughput_bps: 100e6, rtt_s: 0.005, base_rtt_s: 0.001, active: true };
        let pw = power(&mut m, &[wild]);
        let pc = power(&mut m, &[capped]);
        assert!(pw / pc < 1.05, "wild {pw} capped {pc}");
    }

    #[test]
    fn more_subflows_draw_more_power() {
        // Paper Fig. 1.
        let mut m = WiredCpuModel::i7_3770();
        let one = power(&mut m, &[PathLoad::new(100e6, 0.02)]);
        let two = power(&mut m, &[PathLoad::new(50e6, 0.02), PathLoad::new(50e6, 0.02)]);
        assert!(two > one, "two {two} one {one}");
    }
}
