//! Mobile radio power models: WiFi and LTE with an RRC tail-state machine.
//!
//! Calibrated to the measurements of Huang et al., "A Close Examination of
//! Performance and Power Characteristics of 4G LTE Networks" (MobiSys 2012) —
//! the same model family the paper cites as [21] and that eMPTCP (its
//! reference [5]) uses:
//!
//! | Interface | base (mW) | per-Mb/s downlink (mW) | tail |
//! |---|---|---|---|
//! | WiFi | 132.86 | 137.01 | ≈ 0 (PSM) |
//! | LTE  | 1288.04 | 51.97 | 11.576 s at 1060 mW, 260 ms promotion at 1210.7 mW |
//!
//! WiFi power rises *steeply and linearly* with throughput (the paper's
//! Fig. 3b shows ≈ 90 % growth from 10 → 50 Mb/s), while LTE pays a huge
//! always-on base — exactly the asymmetry that makes MPTCP's extra radio
//! expensive on phones (Fig. 2).

use crate::load::{PathLoad, PowerModel};

/// WiFi radio: `P = base + α·τ` while active, near-zero in power-save.
#[derive(Clone, Debug, PartialEq)]
pub struct WifiModel {
    /// Active base power, watts.
    pub base_w: f64,
    /// Per-Mb/s slope, watts.
    pub per_mbps_w: f64,
    /// Power-save (idle) power, watts.
    pub idle_w: f64,
}

impl WifiModel {
    /// Huang et al. MobiSys 2012 calibration (downlink slope).
    pub fn mobisys2012() -> Self {
        WifiModel { base_w: 0.13286, per_mbps_w: 0.13701, idle_w: 0.077 }
    }

    /// Uplink calibration (the sender-side scenario of the paper's Fig. 17):
    /// α_u = 283.17 mW per Mb/s.
    pub fn mobisys2012_uplink() -> Self {
        WifiModel { per_mbps_w: 0.28317, ..WifiModel::mobisys2012() }
    }

    /// Instantaneous power for a load on this interface.
    pub fn power(&self, load: &PathLoad) -> f64 {
        if load.active {
            self.base_w + self.per_mbps_w * load.mbps()
        } else {
            self.idle_w
        }
    }
}

impl PowerModel for WifiModel {
    fn power_w(&mut self, _at_s: f64, paths: &[PathLoad]) -> f64 {
        paths.iter().map(|p| self.power(p)).sum()
    }
}

/// LTE RRC states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RrcState {
    /// Radio released; paging only.
    Idle,
    /// IDLE → CONNECTED promotion in progress.
    Promotion,
    /// Actively transferring.
    Connected,
    /// DRX tail after the last activity, still at high power.
    Tail,
}

/// LTE radio with the RRC promotion/tail state machine.
#[derive(Clone, Debug, PartialEq)]
pub struct LteModel {
    /// Active base power while CONNECTED, watts.
    pub base_w: f64,
    /// Per-Mb/s downlink slope, watts.
    pub per_mbps_w: f64,
    /// Idle (RRC_IDLE) power, watts.
    pub idle_w: f64,
    /// Tail power, watts.
    pub tail_w: f64,
    /// Tail duration, seconds.
    pub tail_s: f64,
    /// Promotion power, watts.
    pub promo_w: f64,
    /// Promotion duration, seconds.
    pub promo_s: f64,
    state: RrcState,
    state_since: f64,
    last_activity: f64,
}

impl LteModel {
    /// Huang et al. MobiSys 2012 calibration.
    pub fn mobisys2012() -> Self {
        LteModel {
            base_w: 1.28804,
            per_mbps_w: 0.05197,
            idle_w: 0.0594,
            tail_w: 1.060,
            tail_s: 11.576,
            promo_w: 1.2107,
            promo_s: 0.260,
            state: RrcState::Idle,
            state_since: 0.0,
            last_activity: f64::NEG_INFINITY,
        }
    }

    /// Uplink calibration: α_u = 438.39 mW per Mb/s — LTE transmission is
    /// far more expensive per bit than WiFi, the asymmetry DTS exploits.
    pub fn mobisys2012_uplink() -> Self {
        LteModel { per_mbps_w: 0.43839, ..LteModel::mobisys2012() }
    }

    /// The current RRC state.
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// Advances the machine to `at_s` given whether the interface is active,
    /// returning the instantaneous power.
    pub fn advance(&mut self, at_s: f64, load: &PathLoad) -> f64 {
        if load.active {
            match self.state {
                RrcState::Idle => {
                    self.state = RrcState::Promotion;
                    self.state_since = at_s;
                }
                RrcState::Promotion => {
                    if at_s - self.state_since >= self.promo_s {
                        self.state = RrcState::Connected;
                        self.state_since = at_s;
                    }
                }
                RrcState::Tail => {
                    self.state = RrcState::Connected;
                    self.state_since = at_s;
                }
                RrcState::Connected => {}
            }
            self.last_activity = at_s;
        } else {
            match self.state {
                RrcState::Connected => {
                    self.state = RrcState::Tail;
                    self.state_since = at_s;
                }
                RrcState::Tail => {
                    if at_s - self.state_since >= self.tail_s {
                        self.state = RrcState::Idle;
                        self.state_since = at_s;
                    }
                }
                RrcState::Promotion => {
                    if at_s - self.state_since >= self.promo_s {
                        self.state = RrcState::Tail;
                        self.state_since = at_s;
                    }
                }
                RrcState::Idle => {}
            }
        }
        match self.state {
            RrcState::Idle => self.idle_w,
            RrcState::Promotion => self.promo_w,
            RrcState::Connected => self.base_w + self.per_mbps_w * load.mbps(),
            RrcState::Tail => self.tail_w,
        }
    }
}

impl PowerModel for LteModel {
    fn power_w(&mut self, at_s: f64, paths: &[PathLoad]) -> f64 {
        let load = paths.first().copied().unwrap_or(PathLoad::IDLE);
        self.advance(at_s, &load)
    }

    fn reset(&mut self) {
        self.state = RrcState::Idle;
        self.state_since = 0.0;
        self.last_activity = f64::NEG_INFINITY;
    }
}

/// A multihomed phone: WiFi on path 0, LTE on path 1, plus a SoC floor.
///
/// This is the Nexus 5 stand-in for the paper's Fig. 2 experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct PhoneModel {
    /// WiFi interface model (path 0).
    pub wifi: WifiModel,
    /// LTE interface model (path 1).
    pub lte: LteModel,
    /// Rest-of-system power floor, watts.
    pub soc_w: f64,
}

impl PhoneModel {
    /// Nexus-5-like defaults (downlink slopes — the Fig. 2 download
    /// experiment).
    pub fn nexus5() -> Self {
        PhoneModel { wifi: WifiModel::mobisys2012(), lte: LteModel::mobisys2012(), soc_w: 0.45 }
    }

    /// Sender-side (uplink) variant for the Fig. 17 scenario, where the
    /// multihomed device transmits.
    pub fn nexus5_uplink() -> Self {
        PhoneModel {
            wifi: WifiModel::mobisys2012_uplink(),
            lte: LteModel::mobisys2012_uplink(),
            soc_w: 0.45,
        }
    }
}

impl PowerModel for PhoneModel {
    fn power_w(&mut self, at_s: f64, paths: &[PathLoad]) -> f64 {
        let wifi_load = paths.first().copied().unwrap_or(PathLoad::IDLE);
        let lte_load = paths.get(1).copied().unwrap_or(PathLoad::IDLE);
        self.soc_w + self.wifi.power(&wifi_load) + self.lte.advance(at_s, &lte_load)
    }

    fn reset(&mut self) {
        self.lte.reset();
    }
}

#[cfg(test)]
// Tests pin outputs that are copies of model constants (base/tail/idle
// watts, zero throughput) reached without arithmetic, so exact float
// comparison is the correct strictness.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn wifi_power_is_steeply_linear() {
        // Paper Fig. 3b: ≈90% growth from 10 to 50 Mb/s... with these
        // coefficients growth is far above 90%; the anchor is "sharp rise".
        let m = WifiModel::mobisys2012();
        let p10 = m.power(&PathLoad::new(10e6, 0.02));
        let p50 = m.power(&PathLoad::new(50e6, 0.02));
        assert!(p50 / p10 > 1.9, "ratio {}", p50 / p10);
        // Linearity: equal increments.
        let p30 = m.power(&PathLoad::new(30e6, 0.02));
        assert!(((p30 - p10) - (p50 - p30)).abs() < 1e-9);
    }

    #[test]
    fn lte_promotion_then_connected() {
        let mut lte = LteModel::mobisys2012();
        let active = PathLoad::new(5e6, 0.05);
        let p0 = lte.advance(0.0, &active);
        assert_eq!(lte.state(), RrcState::Promotion);
        assert_eq!(p0, lte.promo_w);
        let p1 = lte.advance(0.3, &active);
        assert_eq!(lte.state(), RrcState::Connected);
        assert!(p1 > lte.base_w);
    }

    #[test]
    fn lte_tail_costs_energy_after_transfer() {
        let mut lte = LteModel::mobisys2012();
        let active = PathLoad::new(5e6, 0.05);
        lte.advance(0.0, &active);
        lte.advance(0.5, &active);
        // Transfer ends; tail holds high power for 11.576 s.
        let p_tail = lte.advance(1.0, &PathLoad::IDLE);
        assert_eq!(lte.state(), RrcState::Tail);
        assert_eq!(p_tail, lte.tail_w);
        let p_mid_tail = lte.advance(10.0, &PathLoad::IDLE);
        assert_eq!(p_mid_tail, lte.tail_w);
        // After the tail expires the radio idles. (The expiry is detected on
        // the first sample past the boundary.)
        lte.advance(13.0, &PathLoad::IDLE);
        let p_idle = lte.advance(13.1, &PathLoad::IDLE);
        assert_eq!(lte.state(), RrcState::Idle);
        assert_eq!(p_idle, lte.idle_w);
    }

    #[test]
    fn phone_with_both_radios_draws_more_than_wifi_only() {
        // Paper Fig. 2: at the same total throughput, MPTCP (WiFi+LTE)
        // draws more than TCP over WiFi alone, because the second radio
        // adds its large CONNECTED base power.
        let mut phone = PhoneModel::nexus5();
        let loads = [PathLoad::new(10e6, 0.02), PathLoad::new(10e6, 0.06)];
        phone.power_w(0.0, &loads); // promotion
        let both = phone.power_w(1.0, &loads); // connected
        phone.reset();
        let wifi_only = phone.power_w(1.0, &[PathLoad::new(20e6, 0.02), PathLoad::IDLE]);
        assert!(both > wifi_only * 1.1, "both {both} wifi {wifi_only}");
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut lte = LteModel::mobisys2012();
        lte.advance(0.0, &PathLoad::new(1e6, 0.05));
        assert_ne!(lte.state(), RrcState::Idle);
        lte.reset();
        assert_eq!(lte.state(), RrcState::Idle);
    }
}
