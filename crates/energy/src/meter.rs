//! Energy integration: turn transport telemetry into joules.
//!
//! The paper computes `E_total = (M/τ̄)·Σ_r P_r(τ_r, RTT_r)` (its Equation
//! (2)) by reading RAPL counters during a transfer. Here the transport layer
//! records per-subflow load samples and this module integrates a
//! [`PowerModel`] over them: `E = Σ_i P(t_i, loads_i)·Δt_i`.

use crate::load::{PathLoad, PowerModel};
use transport::FlowSample;

/// The result of integrating a power model over a load series.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyReport {
    /// Total energy, joules.
    pub joules: f64,
    /// Series duration, seconds.
    pub duration_s: f64,
    /// Time-averaged power, watts.
    pub mean_power_w: f64,
    /// `(t, watts)` power trace for figures.
    pub trace: Vec<(f64, f64)>,
}

impl EnergyReport {
    /// Energy per delivered bit, joules/bit, given total delivered bits.
    pub fn joules_per_bit(&self, delivered_bits: f64) -> f64 {
        if delivered_bits > 0.0 {
            self.joules / delivered_bits
        } else {
            f64::INFINITY
        }
    }
}

/// Converts one telemetry sample into per-path loads.
///
/// An open-but-momentarily-idle subflow (`active` with zero throughput)
/// stays `active`: the paper's measurement section attributes radio
/// tail/idle energy to *open* subflows, and the LTE RRC model keeps a
/// connected radio in its high-power tail state between bursts. Gating on
/// `throughput_bps > 0.0` here used to zero out exactly that energy.
pub fn loads_of(sample: &FlowSample) -> Vec<PathLoad> {
    sample
        .subflows
        .iter()
        .map(|s| PathLoad {
            throughput_bps: s.throughput_bps,
            rtt_s: s.srtt_s,
            base_rtt_s: s.base_rtt_s,
            active: s.active,
        })
        .collect()
}

/// Integrates `model` over a flow's telemetry series.
///
/// The model is `reset` first, so stateful models start from idle.
pub fn energy_of_flow(model: &mut dyn PowerModel, samples: &[FlowSample]) -> EnergyReport {
    model.reset();
    let mut joules = 0.0;
    let mut duration = 0.0;
    let mut trace = Vec::with_capacity(samples.len());
    for s in samples {
        let loads = loads_of(s);
        let at = s.at.as_secs_f64();
        let p = model.power_w(at, &loads);
        joules += p * s.interval_s;
        duration += s.interval_s;
        trace.push((at, p));
    }
    EnergyReport {
        joules,
        duration_s: duration,
        mean_power_w: if duration > 0.0 { joules / duration } else { 0.0 },
        trace,
    }
}

/// A host-level load series: per-interface loads on a fixed time grid,
/// aggregated across all flows originating at one host.
///
/// Used when several parallel connections share one host CPU (the paper's
/// Fig. 6 scenario runs N senders on one machine).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostLoadSeries {
    /// Grid step, seconds.
    pub bin_s: f64,
    /// `bins[t][iface]` load at grid point `t`.
    pub bins: Vec<Vec<PathLoad>>,
    /// Samples discarded by [`HostLoadSeries::add_flow`] because they fell
    /// past the horizon (surfaced through the `obs` counter registry as
    /// `GlobalCounters::dropped_load_samples`).
    pub dropped_samples: u64,
}

impl HostLoadSeries {
    /// Builds a grid of `n_ifaces` interfaces with `bin_s` resolution
    /// covering `horizon_s`.
    pub fn new(n_ifaces: usize, bin_s: f64, horizon_s: f64) -> Self {
        let n = (horizon_s / bin_s).ceil() as usize;
        HostLoadSeries { bin_s, bins: vec![vec![PathLoad::IDLE; n_ifaces]; n], dropped_samples: 0 }
    }

    /// The grid index of a sample at `at_s` seconds: `floor(at / bin)` with
    /// an epsilon so a sample landing on an exact bin edge deterministically
    /// bins *forward* rather than hinging on float rounding (a sample at
    /// `0.3 s` with 0.1 s bins is bin 3 even when `0.3 / 0.1` computes as
    /// `2.9999…`). `None` when past the horizon.
    fn bin_index(&self, at_s: f64) -> Option<usize> {
        let raw = at_s / self.bin_s;
        let idx = (raw + 1e-9).floor().max(0.0) as usize;
        (idx < self.bins.len()).then_some(idx)
    }

    /// Accumulates a flow's samples. `iface_of[subflow]` maps the flow's
    /// subflow index to the host interface it uses. Samples past the horizon
    /// are counted in [`HostLoadSeries::dropped_samples`] instead of being
    /// silently discarded.
    pub fn add_flow(&mut self, samples: &[FlowSample], iface_of: &[usize]) {
        for s in samples {
            let Some(idx) = self.bin_index(s.at.as_secs_f64()) else {
                self.dropped_samples += 1;
                continue;
            };
            let bin = &mut self.bins[idx];
            for (r, sub) in s.subflows.iter().enumerate() {
                let iface = iface_of.get(r).copied().unwrap_or(r);
                let Some(slot) = bin.get_mut(iface) else { continue };
                // Sum throughput; carry the worst RTT as the interface RTT
                // (the CPU cost term is driven by the flows still queuing).
                slot.throughput_bps += sub.throughput_bps;
                if sub.srtt_s > slot.rtt_s {
                    slot.rtt_s = sub.srtt_s;
                    slot.base_rtt_s = sub.base_rtt_s;
                }
                // Open subflows stay active even between bursts (tail/idle
                // energy accrues to open radios; see `loads_of`).
                slot.active |= sub.active;
            }
        }
    }

    /// Integrates a power model over the host series, stopping after
    /// `until_s` if given (e.g. the last flow's completion).
    pub fn energy(&self, model: &mut dyn PowerModel, until_s: Option<f64>) -> EnergyReport {
        model.reset();
        let mut joules = 0.0;
        let mut duration = 0.0;
        let mut trace = Vec::with_capacity(self.bins.len());
        for (i, bin) in self.bins.iter().enumerate() {
            let at = i as f64 * self.bin_s;
            if let Some(limit) = until_s {
                if at >= limit {
                    break;
                }
            }
            let p = model.power_w(at, bin);
            joules += p * self.bin_s;
            duration += self.bin_s;
            trace.push((at, p));
        }
        EnergyReport {
            joules,
            duration_s: duration,
            mean_power_w: if duration > 0.0 { joules / duration } else { 0.0 },
            trace,
        }
    }
}

#[cfg(test)]
// Tests pin outputs that are copies of model constants (base/tail/idle
// watts, zero throughput) reached without arithmetic, so exact float
// comparison is the correct strictness.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::cpu::WiredCpuModel;
    use netsim::SimTime;
    use transport::SubflowSample;

    fn sample(at_s: f64, mbps: f64) -> FlowSample {
        FlowSample {
            at: SimTime::from_secs_f64(at_s),
            interval_s: 0.1,
            subflows: vec![SubflowSample {
                throughput_bps: mbps * 1e6,
                srtt_s: 0.02,
                base_rtt_s: 0.02,
                cwnd_pkts: 10.0,
                active: mbps > 0.0,
            }],
        }
    }

    #[test]
    fn constant_power_integrates_linearly() {
        let mut m = WiredCpuModel::i7_3770();
        let samples: Vec<_> = (0..10).map(|i| sample(i as f64 * 0.1, 100.0)).collect();
        let report = energy_of_flow(&mut m, &samples);
        assert!((report.duration_s - 1.0).abs() < 1e-9);
        assert!((report.joules - report.mean_power_w).abs() < 1e-9);
        assert_eq!(report.trace.len(), 10);
        // All samples identical → flat trace.
        let p0 = report.trace[0].1;
        assert!(report.trace.iter().all(|(_, p)| (p - p0).abs() < 1e-9));
    }

    #[test]
    fn joules_per_bit_guards_zero() {
        let r = EnergyReport { joules: 10.0, duration_s: 1.0, mean_power_w: 10.0, trace: vec![] };
        assert!(r.joules_per_bit(0.0).is_infinite());
        assert!((r.joules_per_bit(100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn host_series_aggregates_two_flows() {
        let mut series = HostLoadSeries::new(1, 0.1, 1.0);
        let f1: Vec<_> = (0..10).map(|i| sample(i as f64 * 0.1, 10.0)).collect();
        let f2: Vec<_> = (0..10).map(|i| sample(i as f64 * 0.1, 20.0)).collect();
        series.add_flow(&f1, &[0]);
        series.add_flow(&f2, &[0]);
        assert!((series.bins[0][0].throughput_bps - 30e6).abs() < 1.0);
        let mut m = WiredCpuModel::i7_3770();
        let report = series.energy(&mut m, None);
        assert!(report.joules > 0.0);
    }

    fn sample_with(at_s: f64, mbps: f64, active: bool) -> FlowSample {
        FlowSample {
            at: SimTime::from_secs_f64(at_s),
            interval_s: 0.1,
            subflows: vec![SubflowSample {
                throughput_bps: mbps * 1e6,
                srtt_s: 0.05,
                base_rtt_s: 0.05,
                cwnd_pkts: 10.0,
                active,
            }],
        }
    }

    #[test]
    fn open_idle_subflow_still_charges_connected_radio_power() {
        use crate::radio::{LteModel, RrcState};
        // A burst, then the connection stays open but momentarily idle
        // (active subflow, zero throughput) for 3 s.
        let mut samples = vec![sample_with(0.0, 5.0, true), sample_with(0.5, 5.0, true)];
        for i in 1..=30 {
            samples.push(sample_with(0.5 + i as f64 * 0.1, 0.0, true));
        }
        let mut lte = LteModel::mobisys2012();
        let report = energy_of_flow(&mut lte, &samples);
        // The open subflow keeps the RRC machine in CONNECTED: mid-idle
        // power is the CONNECTED base, not the tail (1.060 W) or idle
        // (0.0594 W) power the old `throughput_bps > 0.0` gate produced.
        assert_eq!(lte.state(), RrcState::Connected);
        let (_, p_open_idle) = report.trace[20];
        assert!((p_open_idle - lte.base_w).abs() < 1e-9, "open-idle power {p_open_idle}");
        // A *closed* subflow still releases the radio into the tail.
        let mut closing = samples.clone();
        closing.push(sample_with(3.7, 0.0, false));
        let mut lte2 = LteModel::mobisys2012();
        let report2 = energy_of_flow(&mut lte2, &closing);
        assert_eq!(lte2.state(), RrcState::Tail);
        let (_, p_tail) = *report2.trace.last().unwrap();
        assert!((p_tail - lte2.tail_w).abs() < 1e-9, "tail power {p_tail}");
    }

    #[test]
    fn bin_edges_round_deterministically() {
        // 0.3 / 0.1 computes as 2.9999999999999996 in f64; a naive float
        // truncation files the sample one bin early. The epsilon-floored
        // index must land it in bin 3.
        let mut series = HostLoadSeries::new(1, 0.1, 1.0);
        series.add_flow(&[sample_with(0.3, 10.0, true)], &[0]);
        assert!((series.bins[3][0].throughput_bps - 10e6).abs() < 1.0);
        assert_eq!(series.bins[2][0].throughput_bps, 0.0);
        assert_eq!(series.dropped_samples, 0);
    }

    #[test]
    fn past_horizon_samples_are_counted_not_silent() {
        let mut series = HostLoadSeries::new(1, 0.1, 1.0);
        series.add_flow(
            &[
                sample_with(0.5, 10.0, true),
                sample_with(1.0, 10.0, true),
                sample_with(2.0, 1.0, true),
            ],
            &[0],
        );
        // The 0.5 s sample lands; 1.0 s is the exclusive horizon edge and
        // 2.0 s is far past it — both are dropped and counted.
        assert!((series.bins[5][0].throughput_bps - 10e6).abs() < 1.0);
        assert_eq!(series.dropped_samples, 2);
    }

    #[test]
    fn open_idle_subflow_marks_host_bin_active() {
        let mut series = HostLoadSeries::new(1, 0.1, 1.0);
        series.add_flow(&[sample_with(0.2, 0.0, true)], &[0]);
        assert!(series.bins[2][0].active, "open-but-idle subflow must keep the bin active");
        assert_eq!(series.bins[2][0].throughput_bps, 0.0);
    }

    #[test]
    fn until_limit_truncates() {
        let series = HostLoadSeries::new(1, 0.1, 2.0);
        let mut m = WiredCpuModel::i7_3770();
        let full = series.energy(&mut m, None);
        let half = series.energy(&mut m, Some(1.0));
        assert!((half.duration_s - 1.0).abs() < 1e-9);
        assert!(half.joules < full.joules);
    }
}
