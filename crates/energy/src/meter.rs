//! Energy integration: turn transport telemetry into joules.
//!
//! The paper computes `E_total = (M/τ̄)·Σ_r P_r(τ_r, RTT_r)` (its Equation
//! (2)) by reading RAPL counters during a transfer. Here the transport layer
//! records per-subflow load samples and this module integrates a
//! [`PowerModel`] over them: `E = Σ_i P(t_i, loads_i)·Δt_i`.

use crate::load::{PathLoad, PowerModel};
use transport::FlowSample;

/// The result of integrating a power model over a load series.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyReport {
    /// Total energy, joules.
    pub joules: f64,
    /// Series duration, seconds.
    pub duration_s: f64,
    /// Time-averaged power, watts.
    pub mean_power_w: f64,
    /// `(t, watts)` power trace for figures.
    pub trace: Vec<(f64, f64)>,
}

impl EnergyReport {
    /// Energy per delivered bit, joules/bit, given total delivered bits.
    pub fn joules_per_bit(&self, delivered_bits: f64) -> f64 {
        if delivered_bits > 0.0 {
            self.joules / delivered_bits
        } else {
            f64::INFINITY
        }
    }
}

/// Converts one telemetry sample into per-path loads.
pub fn loads_of(sample: &FlowSample) -> Vec<PathLoad> {
    sample
        .subflows
        .iter()
        .map(|s| PathLoad {
            throughput_bps: s.throughput_bps,
            rtt_s: s.srtt_s,
            base_rtt_s: s.base_rtt_s,
            active: s.active && s.throughput_bps > 0.0,
        })
        .collect()
}

/// Integrates `model` over a flow's telemetry series.
///
/// The model is `reset` first, so stateful models start from idle.
pub fn energy_of_flow(model: &mut dyn PowerModel, samples: &[FlowSample]) -> EnergyReport {
    model.reset();
    let mut joules = 0.0;
    let mut duration = 0.0;
    let mut trace = Vec::with_capacity(samples.len());
    for s in samples {
        let loads = loads_of(s);
        let at = s.at.as_secs_f64();
        let p = model.power_w(at, &loads);
        joules += p * s.interval_s;
        duration += s.interval_s;
        trace.push((at, p));
    }
    EnergyReport {
        joules,
        duration_s: duration,
        mean_power_w: if duration > 0.0 { joules / duration } else { 0.0 },
        trace,
    }
}

/// A host-level load series: per-interface loads on a fixed time grid,
/// aggregated across all flows originating at one host.
///
/// Used when several parallel connections share one host CPU (the paper's
/// Fig. 6 scenario runs N senders on one machine).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostLoadSeries {
    /// Grid step, seconds.
    pub bin_s: f64,
    /// `bins[t][iface]` load at grid point `t`.
    pub bins: Vec<Vec<PathLoad>>,
}

impl HostLoadSeries {
    /// Builds a grid of `n_ifaces` interfaces with `bin_s` resolution
    /// covering `horizon_s`.
    pub fn new(n_ifaces: usize, bin_s: f64, horizon_s: f64) -> Self {
        let n = (horizon_s / bin_s).ceil() as usize;
        HostLoadSeries { bin_s, bins: vec![vec![PathLoad::IDLE; n_ifaces]; n] }
    }

    /// Accumulates a flow's samples. `iface_of[subflow]` maps the flow's
    /// subflow index to the host interface it uses.
    pub fn add_flow(&mut self, samples: &[FlowSample], iface_of: &[usize]) {
        for s in samples {
            let idx = (s.at.as_secs_f64() / self.bin_s) as usize;
            let Some(bin) = self.bins.get_mut(idx) else { continue };
            for (r, sub) in s.subflows.iter().enumerate() {
                let iface = iface_of.get(r).copied().unwrap_or(r);
                let Some(slot) = bin.get_mut(iface) else { continue };
                // Sum throughput; carry the worst RTT as the interface RTT
                // (the CPU cost term is driven by the flows still queuing).
                slot.throughput_bps += sub.throughput_bps;
                if sub.srtt_s > slot.rtt_s {
                    slot.rtt_s = sub.srtt_s;
                    slot.base_rtt_s = sub.base_rtt_s;
                }
                slot.active |= sub.active && sub.throughput_bps > 0.0;
            }
        }
    }

    /// Integrates a power model over the host series, stopping after
    /// `until_s` if given (e.g. the last flow's completion).
    pub fn energy(&self, model: &mut dyn PowerModel, until_s: Option<f64>) -> EnergyReport {
        model.reset();
        let mut joules = 0.0;
        let mut duration = 0.0;
        let mut trace = Vec::with_capacity(self.bins.len());
        for (i, bin) in self.bins.iter().enumerate() {
            let at = i as f64 * self.bin_s;
            if let Some(limit) = until_s {
                if at >= limit {
                    break;
                }
            }
            let p = model.power_w(at, bin);
            joules += p * self.bin_s;
            duration += self.bin_s;
            trace.push((at, p));
        }
        EnergyReport {
            joules,
            duration_s: duration,
            mean_power_w: if duration > 0.0 { joules / duration } else { 0.0 },
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::WiredCpuModel;
    use netsim::SimTime;
    use transport::SubflowSample;

    fn sample(at_s: f64, mbps: f64) -> FlowSample {
        FlowSample {
            at: SimTime::from_secs_f64(at_s),
            interval_s: 0.1,
            subflows: vec![SubflowSample {
                throughput_bps: mbps * 1e6,
                srtt_s: 0.02,
                base_rtt_s: 0.02,
                cwnd_pkts: 10.0,
                active: mbps > 0.0,
            }],
        }
    }

    #[test]
    fn constant_power_integrates_linearly() {
        let mut m = WiredCpuModel::i7_3770();
        let samples: Vec<_> = (0..10).map(|i| sample(i as f64 * 0.1, 100.0)).collect();
        let report = energy_of_flow(&mut m, &samples);
        assert!((report.duration_s - 1.0).abs() < 1e-9);
        assert!((report.joules - report.mean_power_w).abs() < 1e-9);
        assert_eq!(report.trace.len(), 10);
        // All samples identical → flat trace.
        let p0 = report.trace[0].1;
        assert!(report.trace.iter().all(|(_, p)| (p - p0).abs() < 1e-9));
    }

    #[test]
    fn joules_per_bit_guards_zero() {
        let r = EnergyReport { joules: 10.0, duration_s: 1.0, mean_power_w: 10.0, trace: vec![] };
        assert!(r.joules_per_bit(0.0).is_infinite());
        assert!((r.joules_per_bit(100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn host_series_aggregates_two_flows() {
        let mut series = HostLoadSeries::new(1, 0.1, 1.0);
        let f1: Vec<_> = (0..10).map(|i| sample(i as f64 * 0.1, 10.0)).collect();
        let f2: Vec<_> = (0..10).map(|i| sample(i as f64 * 0.1, 20.0)).collect();
        series.add_flow(&f1, &[0]);
        series.add_flow(&f2, &[0]);
        assert!((series.bins[0][0].throughput_bps - 30e6).abs() < 1.0);
        let mut m = WiredCpuModel::i7_3770();
        let report = series.energy(&mut m, None);
        assert!(report.joules > 0.0);
    }

    #[test]
    fn until_limit_truncates() {
        let series = HostLoadSeries::new(1, 0.1, 2.0);
        let mut m = WiredCpuModel::i7_3770();
        let full = series.energy(&mut m, None);
        let half = series.energy(&mut m, Some(1.0));
        assert!((half.duration_s - 1.0).abs() < 1e-9);
        assert!(half.joules < full.joules);
    }
}
