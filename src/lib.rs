//! # mptcp-energy-repro — umbrella crate
//!
//! Re-exports every layer of the reproduction of *On Energy-Efficient
//! Congestion Control for Multipath TCP* (ICDCS 2017) under one roof, for
//! the runnable examples and cross-crate integration tests.
//!
//! * [`netsim`] — deterministic discrete-event network simulator;
//! * [`transport`] — packet-level TCP / MPTCP stack;
//! * [`congestion`] — LIA, OLIA, Balia, ecMTCP, wVegas, EWTCP, Coupled,
//!   Reno, DCTCP;
//! * [`energy`] — CPU and radio power models, energy integration;
//! * [`topology`] — FatTree, VL2, BCube, EC2 VPC, testbed scenarios;
//! * [`workload`] — Pareto bursts, CBR, permutation traffic;
//! * [`paper`] — the paper's contribution: the Equation-(3) model, DTS,
//!   DTS-Φ, fluid solver, conditions, scenario runners;
//! * [`obs`] — structured trace events, sinks (JSONL, ring, filter), and
//!   the counter registry (DESIGN.md §9).

pub use congestion;
pub use energy_model as energy;
pub use mptcp_energy as paper;
pub use netsim;
pub use obs;
pub use topology;
pub use transport;
pub use workload;
