//! `mptcp-energy-repro` — command-line front end to the reproduction.
//!
//! ```text
//! mptcp-energy-repro list
//! mptcp-energy-repro bursty   --cc dts --seed 1 --transfer-mb 8 [--csv|--trace-csv]
//! mptcp-energy-repro wireless --cc dts-phi --duration 60 [--csv]
//! mptcp-energy-repro ec2      --cc lia --hosts 6 --transfer-mb 16 [--csv]
//! mptcp-energy-repro dc       --fabric fattree --cc lia --subflows 2 --duration 5 [--csv]
//! ```

use congestion::AlgorithmKind;
use mptcp_energy::report::{fleet_results_csv, flow_results_csv, trace_csv};
use mptcp_energy::scenarios::{
    run_datacenter, run_ec2, run_two_path_bursty, run_wireless, BurstyOptions, CcChoice, DcKind,
    DcOptions, Ec2Options, FleetResult, FlowResult, WirelessOptions,
};

fn parse_cc(s: &str) -> Result<CcChoice, String> {
    match s {
        "dts" => Ok(CcChoice::dts()),
        "dts-phi" => Ok(CcChoice::dts_phi()),
        other => other.parse::<AlgorithmKind>().map(CcChoice::Base).map_err(|e| e.to_string()),
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}`"));
            };
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                _ => None,
            };
            flags.push((key.to_owned(), value));
        }
        Ok(Args { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key} value `{v}`")),
        }
    }
}

fn print_flow(r: &FlowResult, csv: bool, trace: bool) {
    if trace {
        print!("{}", trace_csv(r));
    } else if csv {
        print!("{}", flow_results_csv(std::slice::from_ref(r)));
    } else {
        println!(
            "{}: {:.2} Mb/s, {:.1} J ({:.2} W mean), fct {}, {} rexmits, {} timeouts",
            r.label,
            r.goodput_bps / 1e6,
            r.energy.joules,
            r.energy.mean_power_w,
            r.finish_s.map_or("-".into(), |t| format!("{t:.2}s")),
            r.rexmits,
            r.timeouts
        );
    }
}

fn print_fleet(r: &FleetResult, csv: bool) {
    if csv {
        print!("{}", fleet_results_csv(std::slice::from_ref(r)));
    } else {
        println!(
            "{}: {:.0} J total, {:.1} Mb/s aggregate, {:.1} J/Gbit, mean fct {}, {:.0}% done",
            r.label,
            r.total_energy_j,
            r.aggregate_goodput_bps / 1e6,
            r.joules_per_gbit,
            r.mean_finish_s.map_or("-".into(), |t| format!("{t:.2}s")),
            100.0 * r.completion_rate
        );
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err("usage: mptcp-energy-repro <list|bursty|wireless|ec2|dc> [flags]".into());
    };
    if cmd == "list" {
        println!("congestion-control algorithms:");
        for kind in AlgorithmKind::ALL {
            println!("  {kind}");
        }
        println!("  dts        (this paper, §V-B)");
        println!("  dts-phi    (this paper, §V-C)");
        println!("scenarios: bursty (Fig 5b), wireless (Fig 17), ec2 (Fig 10), dc (Figs 12-16)");
        return Ok(());
    }
    let args = Args::parse(&argv[1..])?;
    let cc = parse_cc(args.get("cc").unwrap_or("dts"))?;
    let csv = args.has("csv");
    match cmd.as_str() {
        "bursty" => {
            let opts = BurstyOptions {
                seed: args.num("seed", 1u64)?,
                transfer_bytes: Some(args.num("transfer-mb", 8u64)? * 1_000_000),
                duration_s: args.num("duration", 600.0f64)?,
                ..BurstyOptions::default()
            };
            let r = run_two_path_bursty(&cc, &opts);
            print_flow(&r, csv, args.has("trace-csv"));
        }
        "wireless" => {
            let opts = WirelessOptions {
                seed: args.num("seed", 1u64)?,
                duration_s: args.num("duration", 100.0f64)?,
                ..WirelessOptions::default()
            };
            let r = run_wireless(&cc, &opts);
            print_flow(&r, csv, args.has("trace-csv"));
        }
        "ec2" => {
            let opts = Ec2Options {
                seed: args.num("seed", 1u64)?,
                n_hosts: args.num("hosts", 8usize)?,
                transfer_bytes: args.num("transfer-mb", 32u64)? * 1_000_000,
                horizon_s: args.num("duration", 600.0f64)?,
            };
            let r = run_ec2(&cc, &opts);
            print_fleet(&r, csv);
        }
        "dc" => {
            let fabric = match args.get("fabric").unwrap_or("fattree") {
                "fattree" => DcKind::FatTree { k: args.num("k", 4usize)? },
                "vl2" => DcKind::Vl2 { scale: args.num("scale", 4usize)? },
                "bcube" => {
                    DcKind::BCube { n: args.num("n", 4usize)?, k: args.num("levels", 2usize)? }
                }
                other => return Err(format!("unknown fabric `{other}`")),
            };
            let opts = DcOptions {
                seed: args.num("seed", 1u64)?,
                n_subflows: args.num("subflows", 2usize)?,
                duration_s: args.num("duration", 5.0f64)?,
                ..DcOptions::default()
            };
            let r = run_datacenter(fabric, &cc, &opts);
            print_fleet(&r, csv);
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
